"""Plain-text rendering of experiment results.

Everything the harness produces (figure series, comparison runs, tuning
sweeps) can be rendered as aligned text tables — the closest offline
equivalent of the paper's plots, and what the benchmark modules print so the
reproduced "rows/series" are visible in the pytest-benchmark output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.engine import CellResult
from repro.experiments.figures import FigureData
from repro.experiments.runner import ComparisonResult
from repro.experiments.tuning import SweepResult

__all__ = [
    "format_series_table",
    "format_figure",
    "format_comparison",
    "format_sweep",
    "format_failures",
]


def format_failures(failures: Sequence[CellResult], total: int) -> str:
    """One-line footer summarising fault-isolated cells (empty string if none).

    Shown under every aggregate table so a partially failed run is never
    mistaken for a clean one; the first failure is named so there is a
    concrete starting point without digging through logs.
    """
    if not failures:
        return ""
    first = failures[0]
    detail = (
        f"first: {first.algorithm} on {first.graph_name}: {first.error}"
        if first.error is not None
        else f"first: {first.algorithm} on {first.graph_name}"
    )
    # Break the count down by failure mode (exception/timeout/crash) when
    # more than one mode is present — a run losing cells to timeouts needs a
    # different response than one losing them to exceptions.
    kinds: dict[str, int] = {}
    for cell in failures:
        kind = cell.error.kind if cell.error is not None else "exception"
        kinds[kind] = kinds.get(kind, 0) + 1
    breakdown = ""
    if len(kinds) > 1 or "exception" not in kinds:
        ordered = sorted(kinds.items(), key=lambda item: (-item[1], item[0]))
        breakdown = " (" + ", ".join(f"{n} {kind}" for kind, n in ordered) + ")"
    return (
        f"! {len(failures)} of {total} cells failed{breakdown} and are excluded "
        f"from the means ({detail})"
    )


def format_series_table(
    series: Mapping[str, Mapping[int, float]],
    *,
    value_header: str = "value",
    precision: int = 2,
) -> str:
    """Render ``{algorithm: {vertex_count: value}}`` as an aligned text table."""
    algorithms = list(series)
    vertex_counts = sorted({vc for s in series.values() for vc in s})
    header = ["n"] + algorithms
    rows = [header]
    for vc in vertex_counts:
        row = [str(vc)]
        for alg in algorithms:
            value = series[alg].get(vc)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [f"({value_header})"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(header))))
    return "\n".join(lines)


def format_figure(figure: FigureData, *, precision: int = 2) -> str:
    """Render every panel of a reproduced figure as text tables.

    A figure built from a run with fault-isolated failures gets a footer —
    its series may be missing whole algorithms, which must not pass for a
    clean reproduction.
    """
    blocks = [f"{figure.figure_id.upper()}: {figure.title}"]
    for panel in figure.panels:
        blocks.append(
            format_series_table(panel.series, value_header=panel.ylabel, precision=precision)
        )
    footer = format_failures(figure.failures, figure.cells_total)
    if footer:
        blocks.append(footer)
    return "\n\n".join(blocks)


def format_comparison(
    comparison: ComparisonResult, metric: str, *, precision: int = 2
) -> str:
    """Render one metric of a comparison run as a text table.

    When the run had fault-isolated failures a footer line reports how many
    cells were excluded from the means.
    """
    table = format_series_table(
        comparison.all_series(metric), value_header=metric, precision=precision
    )
    footer = format_failures(comparison.failures, comparison.cells_total)
    return f"{table}\n{footer}" if footer else table


def format_sweep(sweep: SweepResult, *, precision: int = 4) -> str:
    """Render a parameter sweep: one row per setting, best marked with ``*``."""
    best = sweep.best().setting
    header = list(sweep.parameter_names) + [
        "mean_objective",
        "mean_width_incl",
        "mean_height",
        "mean_runtime_s",
        "",
    ]
    rows = [header]
    for point in sweep.points:
        rows.append(
            [
                *(f"{x:g}" for x in point.setting),
                f"{point.mean_objective:.{precision}f}",
                f"{point.mean_width_including_dummies:.2f}",
                f"{point.mean_height:.2f}",
                f"{point.mean_running_time:.4f}",
                "*" if point.setting == best else "",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(header))))
    footer = format_failures(sweep.failures, sweep.cells_total)
    if footer:
        lines.append(footer)
    return "\n".join(lines)
