"""Append-only run journal making interrupted experiment runs resumable.

A *run directory* (CLI: ``--run-dir``) holds one ``journal.jsonl`` file: one
JSON line per completed experiment cell, keyed by the same content-addressed
digest the result cache uses (:func:`repro.experiments.cache.cache_key` —
graph digest, full method token, ``nd_width``, package version).  The engine
(:mod:`repro.experiments.engine`) appends a line the moment a cell finishes,
flushing immediately, so a killed run leaves a complete record of everything
it got through.  Re-running with ``--resume`` loads the journal first and
*replays* every journaled successful cell without executing it; only the
remainder of the corpus is computed.

Robustness properties:

* appends are line-buffered and flushed per cell; a kill mid-write leaves at
  most one torn trailing line, which :meth:`RunJournal.load` quarantines;
* every record line embeds a SHA-256 checksum of its own payload, verified
  on load; torn or bit-rotted lines are moved (appended) to
  ``<run-dir>/corrupt/journal.jsonl`` for post-mortems and treated as
  absent, so a resumed run recomputes those cells instead of replaying
  garbage into the aggregate tables;
* journaled *failures* are recorded (for post-mortems) but never replayed —
  a resumed run retries them, so a transient fault does not poison the
  resumed aggregate;
* a full disk (``ENOSPC``) or any other append failure degrades the journal
  to *best-effort*: the run keeps going with journaling disabled (resuming
  will recompute the unjournaled cells), recorded once on the resource
  governor's ``journal-disk`` rung rather than crashing mid-experiment;
* keys embed ``repro.__version__`` (via the cache-key machinery), so a
  journal written by a release with different algorithm behaviour simply
  never matches and the cells are recomputed;
* cells backed by in-process callables have no content identity and are
  never journaled (they are re-executed on resume).
"""

from __future__ import annotations

import errno
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, TextIO

import repro
from repro.experiments.cache import content_digest
from repro.layering.metrics import LayeringMetrics
from repro.utils import chaos, resources

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.engine import CellResult

__all__ = ["JOURNAL_FORMAT", "JOURNAL_VERSION", "RunJournal"]

#: Format marker written in the header line of every journal.
JOURNAL_FORMAT = "repro-run-journal"

#: Bump to orphan journals when the record schema changes.  Version 2 added
#: the per-line SHA-256 checksum and the ``attempts`` field.
JOURNAL_VERSION = 2

_METRIC_FIELDS = (
    "n_vertices",
    "n_edges",
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "objective",
    "nd_width",
)


def _record_from_cell(key: str, cell: "CellResult") -> dict[str, Any]:
    record = {
        "key": key,
        "algorithm": cell.algorithm,
        "graph_name": cell.graph_name,
        "vertex_count": cell.vertex_count,
        "nd_width": cell.nd_width,
        "metrics": cell.metrics.as_dict() if cell.metrics is not None else None,
        "error": asdict(cell.error) if cell.error is not None else None,
        "running_time": cell.running_time,
        "attempts": getattr(cell, "attempts", 1),
    }
    record["sha256"] = content_digest(record)
    return record


def _cell_from_record(record: Mapping[str, Any]) -> "CellResult | None":
    """Rebuild a successful cell from its journal record; ``None`` if invalid."""
    from repro.experiments.engine import CellResult

    metrics_dict = record.get("metrics")
    if not isinstance(metrics_dict, Mapping):
        return None
    try:
        metrics = LayeringMetrics(**{f: metrics_dict[f] for f in _METRIC_FIELDS})
        return CellResult(
            algorithm=str(record["algorithm"]),
            graph_name=str(record["graph_name"]),
            vertex_count=int(record["vertex_count"]),
            nd_width=float(record["nd_width"]),
            metrics=metrics,
            running_time=float(record["running_time"]),
            replayed=True,
            attempts=int(record.get("attempts", 1)),
        )
    except (KeyError, TypeError, ValueError):
        return None


class RunJournal:
    """Append-only per-cell journal living in a run directory.

    ``load()`` (used by ``--resume``) returns the replayable cells; every
    completed cell is appended with ``record()``.  Opening the underlying
    file is lazy: a journal that never records anything creates nothing.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "journal.jsonl"
        self._handle: TextIO | None = None
        self._stale = False
        #: Corrupt lines quarantined by the most recent :meth:`load`.
        self.quarantined = 0

    @property
    def quarantine_path(self) -> Path:
        """Where corrupt journal lines are preserved for post-mortems."""
        return self.directory / "corrupt" / "journal.jsonl"

    def _quarantine_lines(self, lines: list[str]) -> None:
        """Append corrupt lines to the quarantine file (best-effort)."""
        if not lines:
            return
        self.quarantined += len(lines)
        try:
            self.quarantine_path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.quarantine_path, "a", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def load(self) -> "dict[str, CellResult]":
        """Replayable cells keyed by cell digest; corrupt/foreign lines are skipped.

        Only *successful* cells are returned: journaled failures are part of
        the record but a resumed run retries them.  Duplicate keys keep the
        most recent record.  A journal written under a different
        :data:`JOURNAL_VERSION` is ignored wholesale — its record semantics
        may have changed — and the cells are simply recomputed.

        Every record line's embedded SHA-256 checksum is verified: torn or
        bit-rotted lines are quarantined (appended to
        ``corrupt/journal.jsonl`` in the run directory, counted in
        :attr:`quarantined`) and excluded from replay.
        """
        replayable: dict[str, CellResult] = {}
        self.quarantined = 0
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return replayable
        corrupt: list[str] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                corrupt.append(line)  # torn trailing line from a killed run
                continue
            if not isinstance(record, dict):
                corrupt.append(line)
                continue
            if record.get("format") == JOURNAL_FORMAT:
                if record.get("version") != JOURNAL_VERSION:
                    # Nothing in this journal is replayable, and appending
                    # current-version records under the stale header would
                    # defeat resume for this run dir forever: mark the file
                    # for truncation on the next write.
                    self._stale = True
                    return {}
                continue  # current-version header line
            stored_sha = record.pop("sha256", None)
            if not isinstance(stored_sha, str) or content_digest(record) != stored_sha:
                corrupt.append(line)
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            if record.get("error") is not None:
                replayable.pop(key, None)  # most recent outcome wins
                continue
            cell = _cell_from_record(record)
            if cell is not None:
                replayable[key] = cell
        self._quarantine_lines(corrupt)
        return replayable

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #

    def _open(self) -> TextIO:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            fresh = self._stale or not self.path.exists()
            self._handle = open(
                self.path, "w" if self._stale else "a", encoding="utf-8"
            )
            self._stale = False
            if fresh:
                header = {
                    "format": JOURNAL_FORMAT,
                    "version": JOURNAL_VERSION,
                    "package": repro.__version__,
                }
                self._handle.write(json.dumps(header) + "\n")
                self._handle.flush()
        return self._handle

    def record(self, key: str, cell: "CellResult") -> None:
        """Append one completed cell (success or failure) and flush.

        A flush is enough for kill-resumability (the OS keeps flushed pages
        even when the process dies); a per-cell ``fsync`` would make the
        journal power-loss-proof but costs milliseconds per cell at
        full-corpus scale, which is not worth it here.

        Append failures (a full disk, a yanked run directory) never abort
        the run: the journal is an aid to resumability, not a correctness
        dependency.  The first ``OSError`` trips the resource governor's
        ``journal-disk`` breaker, after which appends are skipped until the
        breaker's half-open probe readmits one; the degradation caveat is
        that ``--resume`` will recompute whatever went unjournaled.
        """
        governor = resources.governor()
        if not governor.allow("journal-disk"):
            return
        try:
            if chaos.should_enospc(f"{cell.algorithm}:{cell.graph_name}"):
                raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(self.path))
            handle = self._open()
            handle.write(json.dumps(_record_from_cell(key, cell)) + "\n")
            handle.flush()
        except OSError as exc:
            governor.record_failure(
                "journal-disk",
                f"{exc} — journaling is now best-effort; --resume will "
                "recompute cells finished after this point",
            )
            return
        governor.record_success("journal-disk")

    def clear(self) -> None:
        """Drop any previous journal (a fresh, non-resumed run starts clean)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
