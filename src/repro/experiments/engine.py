"""Shared parallel experiment engine: streaming, fault-isolated, resumable.

Every experiment in the repo — the five-algorithm comparison
(:func:`repro.experiments.runner.run_comparison`), the six figure builders
(:mod:`repro.experiments.figures`) and the parameter sweeps
(:mod:`repro.experiments.tuning`) — reduces to the same workload: a list of
independent *cells* ``(graph, layering method, nd_width) -> LayeringMetrics``.
This module provides the one dispatcher they all share:

* :class:`MethodSpec` — a layering method in a declarative form that can
  cross a process boundary (builtin registry name, Ant Colony parameters) or
  wrap an arbitrary in-process callable;
* :class:`WorkUnit` / :class:`CellResult` — one cell of work and its outcome;
* :class:`ExperimentEngine` — runs cells over the ``"process"``, ``"thread"``
  or ``"serial"`` back ends of :mod:`repro.utils.pool` (the graph table is
  shipped to each process-pool worker exactly once via the pool initializer,
  the per-cell submissions carry only a graph reference and a method spec)
  with an optional content-addressed on-disk cache
  (:mod:`repro.experiments.cache`) making repeated runs incremental.  The
  fourth executor name, ``"colonies"``, dispatches cells like ``"process"``
  and exists so experiment commands advertise the multi-colony runtime:
  Ant Colony specs carrying ``n_colonies > 1`` run each cell as a
  shared-memory colony portfolio (:mod:`repro.aco.runtime`), batching all
  colonies' ants into lockstep kernel calls inside the worker.

Full-corpus-scale lifecycle (the paper's evaluation is 1277 graphs × 5
algorithms ≈ 6400 cells, minutes of wall-clock):

* **Fault isolation** — a raising cell no longer aborts the run.  The
  exception is captured *inside* the executor (worker-side for process
  pools, so the traceback text is the worker's), recorded as
  :class:`CellError` on the cell's :class:`CellResult`, and the run
  continues.  ``ExperimentEngine(strict=True)`` restores fail-fast: the
  first failed cell raises :class:`CellFailure`.
* **Streaming** — :meth:`ExperimentEngine.run_iter` yields completed
  :class:`CellResult` values one at a time in deterministic submission
  order, so aggregators keep O(groups) state instead of materialising every
  cell; :meth:`ExperimentEngine.run` is a thin ``list()`` wrapper.  A
  ``progress`` callback receives a :class:`RunProgress` snapshot after
  every cell (the CLI's live stderr progress line).
* **Resume** — with a :class:`~repro.experiments.journal.RunJournal`
  attached (CLI: ``--run-dir``), every completed cell is journaled the
  moment it finishes; ``resume=True`` (CLI: ``--resume``) replays the
  journaled successful cells instantly and executes only the remainder,
  which makes an interrupted full-corpus run completable across any number
  of kills.

Determinism: cells are submitted in order and results are yielded in
submission order, and every layering algorithm in the repo is deterministic
for a fixed seed, so the engine returns identical metrics for every executor
and worker count.  Only the measured ``running_time`` of a cell varies
between runs (a cache hit or journal replay reports the originally measured
time).

Callable-backed method specs cannot be pickled; the engine runs them in the
parent process (under ``executor="thread"`` they still use the pool), so
custom algorithms keep working with any executor — they just do not gain
multi-core speed-up unless registered in :data:`BUILTIN_METHODS`, and they
are neither cached nor journaled (their behaviour has no content identity).

Hardening (this is the substrate a long-lived ``repro-dag serve`` will sit
on, so the impolite failure modes are first-class):

* **Deadlines** — ``cell_timeout=`` (CLI: ``--timeout``) bounds every
  cell's execution: serial/thread cells through watchdog-bounded waits,
  process/colonies cells through pool-side supervision (the overdue worker
  is killed and replaced), batched packs through a pack-level budget of
  ``cell_timeout × pack size`` with a per-cell serial fallback.  A timed
  out cell is recorded as ``CellError(kind="timeout")`` and never cached.
* **Crash isolation** — a process-pool worker that dies (OOM kill,
  segfault) costs exactly its in-flight cell, recorded as
  ``CellError(kind="crash")``; the pool respawns the worker and the run
  continues.
* **Retries** — ``retries=N`` re-executes failed/timed-out/crashed cells
  up to N more times (in-parent, deadline-bounded), with deterministic
  jittered backoff seeded from the cell's content digest so a retried run
  remains reproducible.  ``CellResult.attempts`` records the count.

Fault injection goes through the shared chaos plane
(:mod:`repro.utils.chaos`): ``REPRO_CHAOS`` rules can make matching cells
raise, hang, ``kill -9`` their worker, run slow, or corrupt their freshly
written cache entry — and the legacy ``REPRO_ENGINE_FAIL`` raise-only hook
keeps working unchanged.  ``REPRO_ENGINE_MAX_CELLS=N`` interrupts the run
(raising :class:`RunInterrupted`) after N freshly executed cells,
simulating a kill mid-run without racing an actual signal.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.aco.parallel import _derive_colony_seeds, parallel_aco_layering
from repro.experiments.cache import ResultCache, cache_key, canonical_json, content_digest
from repro.experiments.journal import RunJournal
from repro.graph.digraph import DiGraph
from repro.graph.io import from_json_dict, to_json_dict
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.promote import promote_layering
from repro.utils import chaos, resources
from repro.utils.chaos import FAIL_CELLS_ENV
from repro.utils.exceptions import ReproError, ValidationError
from repro.utils.pool import (
    EXECUTORS,
    TaskFailure,
    effective_workers,
    imap_with_state,
    run_with_deadline,
)

__all__ = [
    "BUILTIN_METHODS",
    "DEFAULT_BATCH_SIZE",
    "ENGINE_EXECUTORS",
    "FAIL_CELLS_ENV",
    "MAX_CELLS_ENV",
    "MethodSpec",
    "WorkUnit",
    "CellError",
    "CellResult",
    "CellFailure",
    "RunInterrupted",
    "RunProgress",
    "ExperimentEngine",
    "default_method_specs",
]

#: Executor names accepted by the engine: the generic pool back ends,
#: ``"colonies"`` (dispatches cells like ``"process"`` and signals that
#: multi-colony Ant Colony specs should use the shared-memory runtime) and
#: ``"batched"`` (cross-graph megabatching: pending Ant Colony cells with
#: identical specs are packed and advanced through shared lockstep kernel
#: sweeps, see :mod:`repro.aco.runtime`).
ENGINE_EXECUTORS = EXECUTORS + ("colonies", "batched")

#: How many graphs one cross-graph pack holds by default.  Bounds the padded
#: per-pack arrays (pheromone stack, walk state) to tens of megabytes at
#: corpus sizes while leaving only a handful of kernel sweeps per corpus.
DEFAULT_BATCH_SIZE = 128

#: Interruption hook: abort the run (``RunInterrupted``) after this many
#: freshly executed cells — a deterministic stand-in for kill -9 mid-run.
MAX_CELLS_ENV = "REPRO_ENGINE_MAX_CELLS"

LayeringAlgorithm = Callable[[DiGraph], Layering]


def _lpl_with_promotion(graph: DiGraph) -> Layering:
    return promote_layering(graph, longest_path_layering(graph))


def _minwidth_with_promotion(graph: DiGraph) -> Layering:
    return promote_layering(graph, minwidth_layering_sweep(graph))


#: Worker-resolvable registry of the paper's deterministic baseline methods.
#: Entries are module-level functions, so a bare name is enough to rebuild
#: the algorithm inside a process-pool worker.
BUILTIN_METHODS: dict[str, LayeringAlgorithm] = {
    "LPL": longest_path_layering,
    "LPL+PL": _lpl_with_promotion,
    "MinWidth": minwidth_layering_sweep,
    "MinWidth+PL": _minwidth_with_promotion,
}

#: Display name of the paper's Ant Colony entry.
ANT_COLONY = "AntColony"


@dataclass(frozen=True)
class MethodSpec:
    """A layering method in a declarative, executor-portable form.

    Exactly one of three shapes:

    * a **builtin** — ``name`` keys :data:`BUILTIN_METHODS`;
    * an **Ant Colony** — ``aco_params`` holds the full ``ACOParams`` field
      dictionary (seed included, so the spec is deterministic);
      ``n_colonies > 1`` turns the cell into a multi-colony portfolio run
      through the shared-memory runtime (:mod:`repro.aco.runtime`), keeping
      the best colony's layering;
    * a **callable** — ``func`` wraps an arbitrary in-process algorithm.
      Not shippable to process-pool workers and never cached (its behaviour
      cannot be identified by content).
    """

    name: str
    aco_params: Mapping[str, Any] | None = None
    func: LayeringAlgorithm | None = None
    n_colonies: int = 1

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def builtin(cls, name: str) -> "MethodSpec":
        """Spec for one of the registered baseline methods."""
        if name not in BUILTIN_METHODS:
            raise ValidationError(
                f"unknown builtin method {name!r}; choose from {sorted(BUILTIN_METHODS)}"
            )
        return cls(name=name)

    @classmethod
    def ant_colony(
        cls,
        params: ACOParams | None = None,
        *,
        name: str = ANT_COLONY,
        n_colonies: int = 1,
    ) -> "MethodSpec":
        """Spec for the Ant Colony with explicit parameters (default: paper config, seed 0).

        ``n_colonies > 1`` runs every cell as an independent-colony portfolio
        through the shared-memory colony runtime and keeps the best layering.
        """
        if n_colonies < 1:
            raise ValidationError(f"n_colonies must be >= 1, got {n_colonies}")
        params = params if params is not None else ACOParams(seed=0)
        return cls(name=name, aco_params=params.as_dict(), n_colonies=n_colonies)

    @classmethod
    def from_callable(cls, name: str, func: LayeringAlgorithm) -> "MethodSpec":
        """Spec wrapping an arbitrary ``graph -> Layering`` callable."""
        return cls(name=name, func=func)

    # ------------------------------------------------------------------ #
    # capabilities
    # ------------------------------------------------------------------ #

    @property
    def shippable(self) -> bool:
        """Whether the spec can cross a process boundary."""
        return self.func is None

    @property
    def cacheable(self) -> bool:
        """Whether results of this method may be stored in the result cache."""
        return self.func is None

    def resolve(self) -> LayeringAlgorithm:
        """Materialise the actual ``graph -> Layering`` callable."""
        if self.func is not None:
            return self.func
        if self.aco_params is not None:
            params = ACOParams(**dict(self.aco_params))
            if self.n_colonies > 1:
                n_colonies = self.n_colonies
                # max_workers=1 keeps the portfolio as one in-process
                # lockstep batch — cells may already be running inside
                # process-pool workers, which must not spawn grandchildren.
                return lambda g: parallel_aco_layering(
                    g,
                    params,
                    n_colonies=n_colonies,
                    executor="colonies",
                    max_workers=1,
                ).layering
            return lambda g: aco_layering(g, params)
        if self.name in BUILTIN_METHODS:
            return BUILTIN_METHODS[self.name]
        raise ValidationError(f"cannot resolve method spec {self.name!r}")

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form shipped to process-pool workers."""
        if not self.shippable:
            raise ValidationError(
                f"method {self.name!r} wraps a callable and cannot cross a process boundary"
            )
        return {
            "name": self.name,
            "aco_params": dict(self.aco_params) if self.aco_params is not None else None,
            "n_colonies": self.n_colonies,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MethodSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            aco_params=data.get("aco_params"),
            n_colonies=data.get("n_colonies", 1),
        )

    def cache_token(self) -> dict[str, Any]:
        """The method's contribution to the content-addressed cache key."""
        if not self.cacheable:
            raise ValidationError(f"method {self.name!r} wraps a callable and is not cacheable")
        return self.to_dict()


def default_method_specs(
    *,
    aco_params: ACOParams | None = None,
    include_aco: bool = True,
    n_colonies: int = 1,
) -> dict[str, MethodSpec]:
    """The paper's five algorithms as executor-portable method specs.

    The spec-based twin of
    :func:`repro.experiments.runner.default_algorithms`: same names, same
    defaults, but the Ant Colony parameters travel declaratively so every
    entry can be dispatched to process-pool workers and cached.
    ``n_colonies > 1`` upgrades the Ant Colony entry to a multi-colony
    portfolio run through the shared-memory runtime.
    """
    specs = {name: MethodSpec.builtin(name) for name in BUILTIN_METHODS}
    if include_aco:
        specs[ANT_COLONY] = MethodSpec.ant_colony(aco_params, n_colonies=n_colonies)
    return specs


@dataclass(frozen=True)
class WorkUnit:
    """One experiment cell: apply one method to one graph at one ``nd_width``."""

    graph: DiGraph
    method: MethodSpec
    nd_width: float = 1.0
    graph_name: str = ""
    vertex_count: int | None = None
    label: str = ""

    @property
    def algorithm(self) -> str:
        """Display name of the method (explicit label wins over the spec name)."""
        return self.label or self.method.name

    @property
    def resolved_graph_name(self) -> str:
        return self.graph_name or f"graph-n{self.graph.n_vertices}"

    @property
    def resolved_vertex_count(self) -> int:
        return self.vertex_count if self.vertex_count is not None else self.graph.n_vertices

    @property
    def cell_id(self) -> str:
        """``algorithm:graph_name`` identifier used by the fault-injection hook."""
        return f"{self.algorithm}:{self.resolved_graph_name}"


@dataclass(frozen=True)
class CellError:
    """A captured per-cell failure: what went wrong, where, and how long it took.

    ``kind`` classifies the failure mode: ``"exception"`` (the cell raised),
    ``"timeout"`` (the per-cell deadline passed), ``"crash"`` (the worker
    process running the cell died) or ``"oom"`` (the cell exceeded a memory
    budget — a :class:`MemoryError` in place, or a worker death under an
    armed ``RLIMIT_AS`` cap).
    """

    exc_type: str
    message: str
    traceback: str
    running_time: float
    kind: str = "exception"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.exc_type}: {self.message}"


@dataclass(frozen=True)
class CellResult:
    """Outcome of one work unit.

    Exactly one of ``metrics`` / ``error`` is set: a successful cell carries
    its :class:`~repro.layering.metrics.LayeringMetrics`, a failed cell the
    captured :class:`CellError`.  ``cached`` marks a result-cache hit,
    ``replayed`` a journal replay (``--resume``); both report the originally
    measured ``running_time``.
    """

    algorithm: str
    graph_name: str
    vertex_count: int
    nd_width: float
    metrics: LayeringMetrics | None
    running_time: float
    cached: bool = False
    replayed: bool = False
    error: CellError | None = None
    #: Execution attempts this outcome took (1 = first try; > 1 = retried).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether the cell completed without error."""
        return self.error is None


class CellFailure(ReproError):
    """Raised in ``strict`` mode when a cell fails (fail-fast restored).

    The captured :class:`CellError` is attached as :attr:`error` and the
    failed cell's :class:`CellResult` as :attr:`cell`.
    """

    def __init__(self, cell: CellResult) -> None:
        assert cell.error is not None
        super().__init__(
            f"cell {cell.algorithm} on {cell.graph_name} failed: "
            f"{cell.error.exc_type}: {cell.error.message}"
        )
        self.cell = cell
        self.error = cell.error


class RunInterrupted(ReproError):
    """The run stopped early (``REPRO_ENGINE_MAX_CELLS``) with work remaining."""


@dataclass(frozen=True)
class RunProgress:
    """Snapshot handed to the progress callback after every completed cell."""

    done: int
    total: int
    failures: int
    cache_hits: int
    replayed: int
    executed: int
    elapsed_s: float
    #: Cells that needed more than one execution attempt.
    retried: int = 0
    #: Deadline expiries observed, recovered-by-retry ones included.
    timed_out: int = 0

    @property
    def eta_s(self) -> float | None:
        """Estimated seconds to completion (``None`` before the first cell).

        The rate is based on *executed* cells when any exist: journal
        replays and cache hits stream through in microseconds, so counting
        them (as a naive ``elapsed/done`` would) makes a resumed or
        warm-cache run claim ``eta 00:00`` for cells that still need real
        compute.
        """
        if self.done == 0 or self.elapsed_s <= 0:
            return None
        rate_basis = self.executed if self.executed > 0 else self.done
        return (self.total - self.done) * (self.elapsed_s / rate_basis)


def _max_cells() -> int | None:
    raw = os.environ.get(MAX_CELLS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(f"{MAX_CELLS_ENV} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValidationError(f"{MAX_CELLS_ENV} must be >= 1, got {value}")
    return value


def _execute_unit(unit: WorkUnit) -> tuple[LayeringMetrics, float]:
    """Run one cell: time the algorithm, then evaluate the paper's metrics."""
    algorithm = unit.method.resolve()
    start = time.perf_counter()
    layering = algorithm(unit.graph)
    elapsed = time.perf_counter() - start
    metrics = evaluate_layering(unit.graph, layering, nd_width=unit.nd_width)
    return metrics, elapsed


#: Wire format of a captured outcome: ``("ok", metrics, elapsed)`` or
#: ``("error", CellError)``.  Plain picklable tuples so process-pool workers
#: can report failures as data instead of crashing the future.
CellOutcome = tuple


def _safe_execute(
    unit: WorkUnit, cell_id: str | None = None, attempt: int = 1
) -> CellOutcome:
    """Execute one cell, capturing any exception as a :class:`CellError`.

    Runs wherever the cell runs (process-pool worker included), so the
    recorded traceback is the executor's own.  ``KeyboardInterrupt`` and
    other non-``Exception`` conditions propagate — fault isolation is for
    cell bugs, not for the operator's Ctrl-C.  *attempt* (1-based) is handed
    to the chaos plane so attempt-bounded fault rules count correctly even
    across pool workers.
    """
    start = time.perf_counter()
    try:
        chaos.inject(cell_id if cell_id is not None else unit.cell_id, attempt)
        return ("ok", *_execute_unit(unit))
    except Exception as exc:
        return (
            "error",
            CellError(
                exc_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
                running_time=time.perf_counter() - start,
                kind="oom" if isinstance(exc, MemoryError) else "exception",
            ),
        )


def _normalize_outcome(outcome: Any) -> CellOutcome:
    """Fold pool-level failures (crash/timeout/oom) into the CellOutcome shape."""
    if isinstance(outcome, TaskFailure):
        exc_type = {
            "crash": "WorkerCrashed",
            "oom": "MemoryBudgetExceeded",
        }.get(outcome.kind, "TaskDeadlineExceeded")
        return (
            "error",
            CellError(
                exc_type=exc_type,
                message=outcome.message,
                traceback="",
                running_time=0.0,
                kind=outcome.kind,
            ),
        )
    return outcome


def _decode_graph_table(payload: Mapping[str, dict[str, Any]]) -> dict[str, DiGraph]:
    """Per-worker state: decode the shared ``ref -> graph JSON`` table once."""
    return {ref: from_json_dict(graph_json) for ref, graph_json in payload.items()}


def _run_cell(
    state: Mapping[str, DiGraph],
    ref: str,
    spec_dict: dict[str, Any],
    nd_width: float,
    cell_id: str,
) -> CellOutcome:
    """Process-pool worker entry point for one shippable cell."""
    unit = WorkUnit(
        graph=state[ref], method=MethodSpec.from_dict(spec_dict), nd_width=nd_width
    )
    return _safe_execute(unit, cell_id)


def _run_indexed_unit(state: Sequence[WorkUnit], index: int) -> CellOutcome:
    """Thread-pool / serial worker entry point: run the *index*-th pending unit."""
    return _safe_execute(state[index])


@dataclass
class ExperimentEngine:
    """Dispatch experiment cells over an executor, with caching, fault
    isolation, streaming results and journal-based resume.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"`` or
        ``"colonies"`` (process-style dispatch; pair with multi-colony
        Ant Colony specs, see :meth:`MethodSpec.ant_colony`).
    jobs:
        Worker cap for the pool back ends (default: ``REPRO_JOBS`` or the
        CPU count, clamped to the pending cell count).
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; cacheable
        cells found in it are returned without recomputation
        (``CellResult.cached`` is ``True``) and fresh results are stored.
    strict:
        ``False`` (default): a raising cell is captured as
        :attr:`CellResult.error` and the run continues.  ``True``: the
        first failure raises :class:`CellFailure` (fail-fast).
    journal:
        Optional :class:`~repro.experiments.journal.RunJournal`; every
        completed cell is appended as it finishes.  Without ``resume`` a
        pre-existing journal in the directory is cleared first.
    resume:
        With a journal: load it before running and *replay* journaled
        successful cells (``CellResult.replayed``) instead of executing
        them.
    progress:
        Optional callable receiving a :class:`RunProgress` snapshot after
        every completed cell.
    cell_timeout:
        Optional per-cell deadline in seconds (CLI: ``--timeout``).  A cell
        still running when it passes is abandoned/killed (per executor) and
        recorded as ``CellError(kind="timeout")`` — never cached.
    retries:
        Re-execute failed, timed-out or crashed cells up to this many extra
        times (in-parent, deadline-bounded), with deterministic jittered
        backoff between attempts.  ``0`` (default) keeps single-shot
        semantics.
    retry_backoff:
        Base seconds of the exponential backoff between attempts; the
        jitter is seeded from the cell's content digest, so the delays — and
        with them the whole retried run — are reproducible.
    memory_budget:
        Optional per-worker memory budget in bytes (CLI:
        ``--memory-budget``).  The batched planner splits any pack whose
        estimated working set (:func:`repro.utils.resources.estimate_pack_cost`)
        exceeds it, and process/colonies workers arm an ``RLIMIT_AS`` soft
        cap so an over-budget cell fails as ``CellError(kind="oom")``
        instead of OOM-killing the box.  ``oom`` failures are never
        retried: re-running the same allocation against the same budget
        cannot succeed, and retrying it *in-parent* (where no cap is
        armed) could take the whole run down.
    """

    executor: str = "serial"
    jobs: int | None = None
    cache: ResultCache | None = None
    strict: bool = False
    journal: RunJournal | None = None
    resume: bool = False
    progress: Callable[[RunProgress], None] | None = None
    batch_size: int | None = None
    cell_timeout: float | None = None
    retries: int = 0
    retry_backoff: float = 0.05
    memory_budget: int | None = None
    _replay: dict[str, CellResult] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _journal_ready: bool = field(default=False, init=False, repr=False, compare=False)
    _downgrade_noted: bool = field(default=False, init=False, repr=False, compare=False)
    _split_noted: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.executor not in ENGINE_EXECUTORS:
            raise ValidationError(
                f"executor must be one of {ENGINE_EXECUTORS}, got {self.executor!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValidationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValidationError(f"cell_timeout must be > 0, got {self.cell_timeout}")
        if self.retries < 0:
            raise ValidationError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff < 0:
            raise ValidationError(f"retry_backoff must be >= 0, got {self.retry_backoff}")
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValidationError(
                f"memory_budget must be >= 1 byte, got {self.memory_budget}"
            )
        if self.resume and self.journal is None:
            raise ValidationError("resume=True needs a journal (run directory)")

    @classmethod
    def from_options(
        cls,
        *,
        executor: str | None = None,
        jobs: int | None = None,
        cache_dir: str | None = None,
        strict: bool = False,
        run_dir: str | None = None,
        resume: bool = False,
        progress: Callable[[RunProgress], None] | None = None,
        batch_size: int | None = None,
        cell_timeout: float | None = None,
        retries: int = 0,
        memory_budget: int | None = None,
    ) -> "ExperimentEngine":
        """Build an engine from CLI-style options (``None`` means default)."""
        if resume and not run_dir:
            raise ValidationError("--resume needs --run-dir")
        return cls(
            executor=executor or "serial",
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache_dir else None,
            strict=strict,
            journal=RunJournal(run_dir) if run_dir else None,
            resume=resume,
            progress=progress,
            batch_size=batch_size,
            cell_timeout=cell_timeout,
            retries=retries,
            memory_budget=memory_budget,
        )

    def run(self, units: Sequence[WorkUnit]) -> list[CellResult]:
        """Run every unit and return one :class:`CellResult` per unit, in order."""
        return list(self.run_iter(units))

    def run_iter(
        self,
        units: Iterable[WorkUnit],
        *,
        progress: Callable[[RunProgress], None] | None = None,
    ) -> Iterator[CellResult]:
        """Yield one :class:`CellResult` per unit, in submission order, as
        cells complete.

        The streaming heart of the engine: journal replays and cache hits
        are yielded without execution, the remainder is dispatched over the
        configured executor, and each result is journaled/cached/reported
        the moment it is available.  Failed cells are yielded with
        :attr:`CellResult.error` set (or raise :class:`CellFailure` under
        ``strict``).
        """
        units = list(units)
        progress_cb = progress if progress is not None else self.progress
        max_cells = _max_cells()
        if (
            self.executor == "colonies"
            and units
            and not any(unit.method.n_colonies > 1 for unit in units)
        ):
            warnings.warn(
                "executor='colonies' dispatches cells like 'process', and no "
                "method spec carries n_colonies > 1 — the multi-colony "
                "runtime is not in play.  Pass --colonies K (or "
                "MethodSpec.ant_colony(..., n_colonies=K)) to run portfolio "
                "cells.",
                RuntimeWarning,
                stacklevel=2,
            )

        replay = self._prepare_journal()

        # Pool-executor auto-downgrade: when the effective worker count
        # resolves to one (1-CPU box, REPRO_JOBS=1, --jobs 1) a process pool
        # can only add serialisation overhead (the tracked bench records a
        # 0.58x "speedup"), so the cells run serially instead — with a
        # one-line note rather than a silently paid tax.
        dispatch_executor = self.executor
        if self.executor in ("process", "colonies") and units:
            if effective_workers(self.jobs) == 1:
                dispatch_executor = "serial"
                if not self._downgrade_noted:
                    self._downgrade_noted = True
                    print(
                        f"note: executor '{self.executor}' resolves to a single "
                        "worker here; running cells serially (no pool overhead)",
                        file=sys.stderr,
                    )

        # The graph digest is computed once per distinct graph object and
        # shared by cache and journal keys.  The serialised JSON payload is
        # not retained for the whole run (corpus-many dicts would undercut
        # the streaming-memory story); on the process-style executors it is
        # stashed just long enough for the shipping table to pick it up
        # without serialising the graph a second time.
        ships_json = dispatch_executor in ("process", "colonies")
        digest_memo: dict[int, str] = {}
        json_stash: dict[int, dict[str, Any]] = {}

        def graph_digest(graph: DiGraph) -> str:
            key = id(graph)
            if key not in digest_memo:
                payload = to_json_dict(graph)
                if ships_json:
                    json_stash[key] = payload
                digest_memo[key] = content_digest(payload)
            return digest_memo[key]

        keys: list[str | None] = [None] * len(units)
        ready: dict[int, CellResult] = {}
        pending: list[tuple[int, WorkUnit]] = []
        want_key = self.cache is not None or self.journal is not None
        for i, unit in enumerate(units):
            if want_key and unit.method.cacheable:
                key = cache_key(
                    graph_digest(unit.graph), unit.method.cache_token(), unit.nd_width
                )
                keys[i] = key
                journaled = replay.get(key)
                if journaled is not None:
                    ready[i] = self._restamp(unit, journaled)
                    continue
                if self.cache is not None:
                    hit = self.cache.get(key)
                    if hit is not None:
                        ready[i] = self._finished(
                            unit, hit.metrics, None, hit.running_time, cached=True
                        )
                        continue
            pending.append((i, unit))

        stream = self._dispatch_iter(pending, json_stash, dispatch_executor)
        if not pending:
            json_stash.clear()  # all cells replayed/hit: nothing will be shipped
        start = time.perf_counter()
        done = failures = cache_hits = replayed = executed = 0
        retried = timed_out = 0
        try:
            for i, unit in enumerate(units):
                cell = ready.pop(i, None)
                if cell is None:
                    outcome = _normalize_outcome(next(stream))
                    outcome, attempts, timeouts = self._with_retries(
                        unit, keys[i], outcome
                    )
                    timed_out += timeouts
                    retried += 1 if attempts > 1 else 0
                    if outcome[0] == "ok":
                        cell = self._finished(
                            unit, outcome[1], None, outcome[2], attempts=attempts
                        )
                    else:
                        error = outcome[1]
                        cell = self._finished(
                            unit, None, error, error.running_time, attempts=attempts
                        )
                    if keys[i] is not None:
                        if self.journal is not None:
                            self.journal.record(keys[i], cell)
                        if self.cache is not None and cell.ok:
                            assert cell.metrics is not None
                            self.cache.put(
                                keys[i],
                                cell.metrics,
                                cell.running_time,
                                chaos_id=unit.cell_id,
                                attempt=attempts,
                            )
                    executed += 1
                elif self.journal is not None and cell.cached and keys[i] is not None:
                    # Cache hits are journaled too, so a resumed run replays
                    # them even when the cache has since been pruned.
                    self.journal.record(keys[i], cell)
                done += 1
                failures += 0 if cell.ok else 1
                cache_hits += 1 if cell.cached else 0
                replayed += 1 if cell.replayed else 0
                if progress_cb is not None:
                    progress_cb(
                        RunProgress(
                            done=done,
                            total=len(units),
                            failures=failures,
                            cache_hits=cache_hits,
                            replayed=replayed,
                            executed=executed,
                            elapsed_s=time.perf_counter() - start,
                            retried=retried,
                            timed_out=timed_out,
                        )
                    )
                if self.strict and not cell.ok:
                    raise CellFailure(cell)
                yield cell
                if (
                    max_cells is not None
                    and executed >= max_cells
                    and executed < len(pending)
                ):
                    raise RunInterrupted(
                        f"run interrupted after {executed} executed cells "
                        f"({MAX_CELLS_ENV}={max_cells}); "
                        f"{len(pending) - executed} cells not executed"
                    )
        finally:
            stream.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _prepare_journal(self) -> dict[str, CellResult]:
        """Load the replay map (``resume``) or clear a stale journal, once."""
        if self.journal is None:
            return {}
        if not self._journal_ready:
            if self.resume:
                self._replay = self.journal.load()
            else:
                self.journal.clear()
                self._replay = {}
            self._journal_ready = True
        assert self._replay is not None
        return self._replay

    @staticmethod
    def _restamp(unit: WorkUnit, journaled: CellResult) -> CellResult:
        """A journal replay re-labelled with the current unit's metadata."""
        return CellResult(
            algorithm=unit.algorithm,
            graph_name=unit.resolved_graph_name,
            vertex_count=unit.resolved_vertex_count,
            nd_width=unit.nd_width,
            metrics=journaled.metrics,
            running_time=journaled.running_time,
            replayed=True,
            attempts=journaled.attempts,
        )

    @staticmethod
    def _finished(
        unit: WorkUnit,
        metrics: LayeringMetrics | None,
        error: CellError | None,
        elapsed: float,
        *,
        cached: bool = False,
        attempts: int = 1,
    ) -> CellResult:
        return CellResult(
            algorithm=unit.algorithm,
            graph_name=unit.resolved_graph_name,
            vertex_count=unit.resolved_vertex_count,
            nd_width=unit.nd_width,
            metrics=metrics,
            running_time=elapsed,
            cached=cached,
            error=error,
            attempts=attempts,
        )

    # ------------------------------------------------------------------ #
    # deadlines and retries
    # ------------------------------------------------------------------ #

    def _attempt_cell(self, unit: WorkUnit, attempt: int) -> CellOutcome:
        """One in-parent, deadline-bounded execution attempt of a cell."""
        if self.cell_timeout is None:
            return _safe_execute(unit, attempt=attempt)
        completed, value = run_with_deadline(
            lambda: _safe_execute(unit, attempt=attempt), self.cell_timeout
        )
        if completed:
            return value
        return (
            "error",
            CellError(
                exc_type="TaskDeadlineExceeded",
                message=(
                    f"cell {unit.cell_id} exceeded the "
                    f"{self.cell_timeout:.6g}s deadline"
                ),
                traceback="",
                running_time=self.cell_timeout,
                kind="timeout",
            ),
        )

    def _backoff_delay(self, token: str, attempt: int) -> float:
        """Deterministic jittered exponential backoff before retry *attempt*.

        The jitter is a pure function of the cell's identity (cache key when
        it has one, cell id otherwise) and the attempt number, so a retried
        run sleeps the same amounts every time — reproducibility extends to
        the recovery path.
        """
        if self.retry_backoff <= 0:
            return 0.0
        digest = hashlib.sha256(f"{token}:{attempt}".encode("utf-8")).digest()
        h = int.from_bytes(digest[:4], "big")
        return self.retry_backoff * (2 ** (attempt - 1)) * (0.5 + h / 0xFFFFFFFF)

    def _with_retries(
        self, unit: WorkUnit, key: str | None, outcome: CellOutcome
    ) -> tuple[CellOutcome, int, int]:
        """Re-execute a failed cell up to ``retries`` more times.

        Retries run in the parent process (deadline-bounded) regardless of
        the executor: the faulted worker may be gone, and one straggler cell
        does not need a pool.  Returns ``(outcome, attempts, timeouts)``
        where *timeouts* counts deadline expiries across all attempts.

        ``oom`` failures are final: the same allocation against the same
        budget cannot succeed, and the in-parent retry path has no
        ``RLIMIT_AS`` cap armed — retrying there could OOM the whole run
        instead of one labelled cell.
        """
        attempts = 1
        timeouts = 1 if outcome[0] == "error" and outcome[1].kind == "timeout" else 0
        token = key if key is not None else unit.cell_id
        while (
            outcome[0] == "error"
            and outcome[1].kind != "oom"
            and attempts <= self.retries
        ):
            delay = self._backoff_delay(token, attempts)
            if delay > 0:
                time.sleep(delay)
            attempts += 1
            outcome = self._attempt_cell(unit, attempts)
            if outcome[0] == "error" and outcome[1].kind == "timeout":
                timeouts += 1
        return outcome, attempts, timeouts

    def _dispatch_iter(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        json_stash: dict[int, dict[str, Any]],
        executor: str | None = None,
    ) -> Iterator[CellOutcome]:
        """Stream outcomes for the pending units, preserving their order."""
        if not pending:
            return
        executor = executor if executor is not None else self.executor
        if executor == "batched":
            json_stash.clear()
            yield from self._dispatch_batched(pending)
            return
        if executor not in ("process", "colonies"):
            pending_units = [unit for _, unit in pending]
            yield from imap_with_state(
                _run_indexed_unit,
                [(k,) for k in range(len(pending_units))],
                executor=executor,
                max_workers=self.jobs,
                shared_state=pending_units,
                task_timeout=self.cell_timeout,
                failure_mode="result",
            )
            return

        # Build the shared graph table: each distinct graph is serialised
        # once and shipped to each worker once (pool initializer).
        shippable = [unit for _, unit in pending if unit.method.shippable]
        ref_by_graph: dict[int, str] = {}
        table: dict[str, dict[str, Any]] = {}
        for unit in shippable:
            gid = id(unit.graph)
            if gid not in ref_by_graph:
                ref = f"g{len(ref_by_graph)}"
                ref_by_graph[gid] = ref
                stashed = json_stash.pop(gid, None)
                table[ref] = stashed if stashed is not None else to_json_dict(unit.graph)
        json_stash.clear()  # graphs that only had cache/journal hits
        tasks = [
            (ref_by_graph[id(unit.graph)], unit.method.to_dict(), unit.nd_width, unit.cell_id)
            for unit in shippable
        ]
        pool_stream: Iterator[CellOutcome] = (
            imap_with_state(
                _run_cell,
                tasks,
                executor="process",
                max_workers=self.jobs,
                init_fn=_decode_graph_table,
                payload=table,
                task_timeout=self.cell_timeout,
                failure_mode="result",
                memory_limit_bytes=self.memory_budget,
            )
            if tasks
            else iter(())
        )
        try:
            for _, unit in pending:
                if unit.method.shippable:
                    yield next(pool_stream)
                else:
                    # Callable-backed methods cannot be pickled; run them
                    # in-process, lazily (and deadline-bounded), when their
                    # turn comes.
                    yield self._attempt_cell(unit, 1)
        finally:
            close = getattr(pool_stream, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------ #
    # cross-graph megabatching
    # ------------------------------------------------------------------ #

    def _dispatch_batched(
        self, pending: Sequence[tuple[int, WorkUnit]]
    ) -> Iterator[CellOutcome]:
        """Stream outcomes with Ant Colony cells executed as cross-graph packs.

        The batch planner groups the pending Ant Colony cells by identical
        method token and ``nd_width`` (cache hits and journal replays were
        already filtered out by the caller, so ``--resume`` and warm caches
        compose unchanged), sorts each group by graph size (uniform packs
        waste no padding) and chunks it into packs of ``batch_size`` graphs.
        Each pack runs as one :func:`repro.aco.runtime.run_packed_colonies`
        call the first time the stream reaches one of its cells — laziness
        the interruption hook (``REPRO_ENGINE_MAX_CELLS``) relies on.
        Non-ACO cells (builtins, callables, seedless specs) execute serially
        in place, exactly as the serial executor would.
        """
        batch_size = self.batch_size if self.batch_size is not None else DEFAULT_BATCH_SIZE
        groups: dict[str, list[int]] = {}
        for pos, (_, unit) in enumerate(pending):
            method = unit.method
            if (
                method.aco_params is not None
                and method.shippable
                # A None seed means fresh entropy per run: there is no
                # per-graph stream to replicate, so such cells keep the
                # serial path (results would be nondeterministic either way).
                and method.aco_params.get("seed") is not None
            ):
                key = canonical_json(
                    {"method": method.to_dict(), "nd_width": unit.nd_width}
                )
                groups.setdefault(key, []).append(pos)

        pack_of: dict[int, list[int]] = {}
        for positions in groups.values():
            ordered = sorted(
                positions, key=lambda pos: pending[pos][1].graph.n_vertices
            )
            for start in range(0, len(ordered), batch_size):
                chunk = ordered[start : start + batch_size]
                for piece in self._split_chunk_by_budget(chunk, pending):
                    for pos in piece:
                        pack_of[pos] = piece

        ready: dict[int, CellOutcome] = {}
        for pos, (_, unit) in enumerate(pending):
            if pos in ready:
                yield ready.pop(pos)
            elif pos in pack_of:
                self._execute_pack(
                    [(p, pending[p][1]) for p in pack_of[pos]], ready
                )
                yield ready.pop(pos)
            else:
                yield self._attempt_cell(unit, 1)

    def _split_chunk_by_budget(
        self, chunk: list[int], pending: Sequence[tuple[int, WorkUnit]]
    ) -> Iterator[list[int]]:
        """Split one planned pack so each piece fits the memory budget.

        Greedy in the planner's size order: graphs accumulate into a piece
        while :func:`repro.utils.resources.estimate_pack_cost` keeps the
        piece's estimated working set under ``memory_budget``.  A single
        graph whose own estimate exceeds the budget still runs — as a
        singleton pack, where the estimate is tightest and an actual
        :class:`MemoryError` is caught and labelled ``oom`` without
        touching any pack-mate.  Splitting never changes results: packs are
        bit-identical to per-graph runs by the packed-runtime contract.
        """
        if self.memory_budget is None or len(chunk) <= 1:
            yield chunk
            return
        spec = pending[chunk[0]][1].method
        params = dict(spec.aco_params or {})
        kwargs = {
            "n_colonies": spec.n_colonies,
            "n_ants": int(params.get("n_ants", 10)),
            "n_tours": int(params.get("n_tours", 10)),
            "alpha": float(params.get("alpha", 1.0)),
        }
        stats = {
            pos: resources.problem_stats(pending[pos][1].graph) for pos in chunk
        }
        pieces: list[list[int]] = []
        piece: list[int] = []
        for pos in chunk:
            candidate = piece + [pos]
            estimate = resources.pack_cost_from_stats(
                [stats[p] for p in candidate], **kwargs
            )
            if piece and estimate.bytes > self.memory_budget:
                pieces.append(piece)
                piece = [pos]
            else:
                piece = candidate
        if piece:
            pieces.append(piece)
        if len(pieces) > 1 and not self._split_noted:
            self._split_noted = True
            print(
                f"note: memory budget {self.memory_budget} bytes splits "
                f"planned packs (first: {len(chunk)} cells -> "
                f"{len(pieces)} packs); results are unchanged",
                file=sys.stderr,
            )
        yield from pieces

    def _execute_pack(
        self,
        cells: list[tuple[int, WorkUnit]],
        ready: dict[int, CellOutcome],
    ) -> None:
        """Run one pack of same-spec cells; deposit one outcome per cell.

        Fault isolation is per cell: the injection hook and problem
        construction run per graph (a poisoned graph is recorded as its own
        :class:`CellError` and simply excluded from the pack before launch),
        and a failure of the packed runtime itself falls back to executing
        the surviving cells one by one — so one bad cell can never take a
        pack-mate down with it.
        """
        from repro.aco.problem import LayeringProblem, PackedProblems
        from repro.aco.runtime import run_packed_colonies

        governor = resources.governor()
        if not governor.allow("batched"):
            # The batched breaker is open: the packed runtime failed
            # repeatedly, so the degraded rung runs every cell through the
            # (bit-identical) serial path until a probe closes it again.
            for pos, unit in cells:
                ready[pos] = self._attempt_cell(unit, 1)
            return

        start = time.perf_counter()
        spec = cells[0][1].method
        params = ACOParams(**dict(spec.aco_params))
        survivors: list[tuple[int, WorkUnit]] = []
        problems: list[LayeringProblem] = []
        for pos, unit in cells:
            cell_start = time.perf_counter()

            def build(unit=unit) -> LayeringProblem:
                chaos.inject(unit.cell_id)
                return LayeringProblem.from_graph(unit.graph, nd_width=params.nd_width)

            try:
                if self.cell_timeout is None:
                    problem = build()
                else:
                    # The per-cell setup (chaos hangs included) is bounded by
                    # the cell deadline even on the batched path.
                    completed, problem = run_with_deadline(build, self.cell_timeout)
                    if not completed:
                        ready[pos] = (
                            "error",
                            CellError(
                                exc_type="TaskDeadlineExceeded",
                                message=(
                                    f"cell {unit.cell_id} exceeded the "
                                    f"{self.cell_timeout:.6g}s deadline during "
                                    "pack setup"
                                ),
                                traceback="",
                                running_time=self.cell_timeout,
                                kind="timeout",
                            ),
                        )
                        continue
            except Exception as exc:
                ready[pos] = (
                    "error",
                    CellError(
                        exc_type=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                        running_time=time.perf_counter() - cell_start,
                        kind="oom" if isinstance(exc, MemoryError) else "exception",
                    ),
                )
            else:
                problems.append(problem)
                survivors.append((pos, unit))
        if not survivors:
            return

        if spec.n_colonies > 1:
            colony_seeds = _derive_colony_seeds(params.seed, spec.n_colonies)
        else:
            colony_seeds = [params.seed]
        seeds_per_graph = [colony_seeds] * len(problems)

        def run_pack():
            packed = PackedProblems.pack(problems)
            return run_packed_colonies(
                packed, params, seeds_per_graph, max_workers=self.jobs
            )

        try:
            if self.cell_timeout is None:
                outcomes = run_pack()
            else:
                # One fused pack cannot observe per-cell wall-clock, so the
                # deadline generalises to a pack budget; on expiry every cell
                # falls back to the individually-bounded serial path, where a
                # single hung cell costs only its own deadline.
                budget = self.cell_timeout * len(survivors)
                completed, outcomes = run_with_deadline(run_pack, budget)
                if not completed:
                    print(
                        f"note: pack of {len(survivors)} cells exceeded its "
                        f"{budget:.6g}s budget; re-running the cells serially "
                        "under individual deadlines",
                        file=sys.stderr,
                    )
                    for pos, unit in survivors:
                        ready[pos] = self._attempt_cell(unit, 1)
                    return
        except Exception as exc:
            # The packed path failed wholesale; isolate by running each
            # surviving cell through the ordinary serial path instead — with
            # a note, so the degradation to serial speed is never silent.
            # The failure also counts against the batched breaker: enough
            # consecutive ones fence the packed runtime off entirely.
            governor.record_failure("batched", f"{type(exc).__name__}: {exc}")
            print(
                f"note: packed execution of {len(survivors)} cells failed "
                f"({type(exc).__name__}: {exc}); re-running them serially",
                file=sys.stderr,
            )
            for pos, unit in survivors:
                ready[pos] = self._attempt_cell(unit, 1)
            return
        governor.record_success("batched")

        results: list[tuple[int, CellOutcome]] = []
        for (pos, unit), problem, graph_outcomes in zip(survivors, problems, outcomes):
            try:
                layering = self._pack_layering(unit, problem, graph_outcomes, params)
                metrics = evaluate_layering(
                    unit.graph, layering, nd_width=unit.nd_width
                )
            except Exception as exc:
                results.append(
                    (
                        pos,
                        (
                            "error",
                            CellError(
                                exc_type=type(exc).__name__,
                                message=str(exc),
                                traceback=traceback.format_exc(),
                                running_time=0.0,
                            ),
                        ),
                    )
                )
            else:
                results.append((pos, ("ok", metrics)))

        # Per-cell wall-clock cannot be observed inside one fused kernel
        # sweep; each cell reports a share of the pack's wall-clock weighted
        # by its graph's vertex count — an estimate (and recorded as such in
        # the cache/journal), but one that keeps per-size running-time
        # aggregates meaningful when packs mix graph sizes.
        elapsed = time.perf_counter() - start
        total_vertices = sum(unit.graph.n_vertices for _, unit in survivors)
        weight = {
            pos: unit.graph.n_vertices / total_vertices if total_vertices else 1.0
            for pos, unit in survivors
        }
        for pos, outcome in results:
            share = elapsed * weight[pos]
            if outcome[0] == "ok":
                ready[pos] = ("ok", outcome[1], share)
            else:
                error = outcome[1]
                ready[pos] = (
                    "error",
                    CellError(
                        exc_type=error.exc_type,
                        message=error.message,
                        traceback=error.traceback,
                        running_time=share,
                    ),
                )

    @staticmethod
    def _pack_layering(unit, problem, graph_outcomes, params: ACOParams) -> Layering:
        """The cell's final layering from its pack outcomes.

        Mirrors the serial path exactly: a single-colony cell returns the
        colony's best assignment (:func:`repro.aco.layering_aco.aco_layering`
        protocol); an ``n_colonies > 1`` portfolio re-evaluates each colony's
        layering and keeps the first objective maximum in colony order
        (:func:`repro.aco.runtime.colonies_aco_layering` protocol).
        """
        if len(graph_outcomes) == 1:
            layering = problem.assignment_to_layering(
                graph_outcomes[0].assignment, normalize=True
            )
            layering.validate(unit.graph)
            return layering
        best_layering: Layering | None = None
        best_objective = float("-inf")
        for outcome in graph_outcomes:
            layering = problem.assignment_to_layering(outcome.assignment, normalize=True)
            metrics = evaluate_layering(
                unit.graph, layering, nd_width=params.nd_width
            )
            if best_layering is None or metrics.objective > best_objective:
                best_layering, best_objective = layering, metrics.objective
        assert best_layering is not None
        best_layering.validate(unit.graph)
        return best_layering
