"""Shared parallel experiment engine.

Every experiment in the repo — the five-algorithm comparison
(:func:`repro.experiments.runner.run_comparison`), the six figure builders
(:mod:`repro.experiments.figures`) and the parameter sweeps
(:mod:`repro.experiments.tuning`) — reduces to the same workload: a list of
independent *cells* ``(graph, layering method, nd_width) -> LayeringMetrics``.
This module provides the one dispatcher they all share:

* :class:`MethodSpec` — a layering method in a declarative form that can
  cross a process boundary (builtin registry name, Ant Colony parameters) or
  wrap an arbitrary in-process callable;
* :class:`WorkUnit` / :class:`CellResult` — one cell of work and its outcome;
* :class:`ExperimentEngine` — runs cells over the ``"process"``, ``"thread"``
  or ``"serial"`` back ends of :mod:`repro.utils.pool` (the graph table is
  shipped to each process-pool worker exactly once via the pool initializer,
  the per-cell submissions carry only a graph reference and a method spec)
  with an optional content-addressed on-disk cache
  (:mod:`repro.experiments.cache`) making repeated runs incremental.  The
  fourth executor name, ``"colonies"``, dispatches cells like ``"process"``
  and exists so experiment commands advertise the multi-colony runtime:
  Ant Colony specs carrying ``n_colonies > 1`` run each cell as a
  shared-memory colony portfolio (:mod:`repro.aco.runtime`), batching all
  colonies' ants into lockstep kernel calls inside the worker.

Determinism: cells are submitted in order and results are returned in
submission order, and every layering algorithm in the repo is deterministic
for a fixed seed, so the engine returns identical metrics for every executor
and worker count.  Only the measured ``running_time`` of a cell varies
between runs (a cache hit reports the originally measured time).

Callable-backed method specs cannot be pickled; the engine runs them in the
parent process (under ``executor="thread"`` they still use the pool), so
custom algorithms keep working with any executor — they just do not gain
multi-core speed-up unless registered in :data:`BUILTIN_METHODS`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.aco.parallel import parallel_aco_layering
from repro.experiments.cache import ResultCache, cache_key, content_digest
from repro.graph.digraph import DiGraph
from repro.graph.io import from_json_dict, to_json_dict
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.promote import promote_layering
from repro.utils.exceptions import ValidationError
from repro.utils.pool import EXECUTORS, map_with_state

__all__ = [
    "BUILTIN_METHODS",
    "ENGINE_EXECUTORS",
    "MethodSpec",
    "WorkUnit",
    "CellResult",
    "ExperimentEngine",
    "default_method_specs",
]

#: Executor names accepted by the engine: the generic pool back ends plus
#: ``"colonies"``, which dispatches cells like ``"process"`` and signals that
#: multi-colony Ant Colony specs should use the shared-memory runtime.
ENGINE_EXECUTORS = EXECUTORS + ("colonies",)

LayeringAlgorithm = Callable[[DiGraph], Layering]


def _lpl_with_promotion(graph: DiGraph) -> Layering:
    return promote_layering(graph, longest_path_layering(graph))


def _minwidth_with_promotion(graph: DiGraph) -> Layering:
    return promote_layering(graph, minwidth_layering_sweep(graph))


#: Worker-resolvable registry of the paper's deterministic baseline methods.
#: Entries are module-level functions, so a bare name is enough to rebuild
#: the algorithm inside a process-pool worker.
BUILTIN_METHODS: dict[str, LayeringAlgorithm] = {
    "LPL": longest_path_layering,
    "LPL+PL": _lpl_with_promotion,
    "MinWidth": minwidth_layering_sweep,
    "MinWidth+PL": _minwidth_with_promotion,
}

#: Display name of the paper's Ant Colony entry.
ANT_COLONY = "AntColony"


@dataclass(frozen=True)
class MethodSpec:
    """A layering method in a declarative, executor-portable form.

    Exactly one of three shapes:

    * a **builtin** — ``name`` keys :data:`BUILTIN_METHODS`;
    * an **Ant Colony** — ``aco_params`` holds the full ``ACOParams`` field
      dictionary (seed included, so the spec is deterministic);
      ``n_colonies > 1`` turns the cell into a multi-colony portfolio run
      through the shared-memory runtime (:mod:`repro.aco.runtime`), keeping
      the best colony's layering;
    * a **callable** — ``func`` wraps an arbitrary in-process algorithm.
      Not shippable to process-pool workers and never cached (its behaviour
      cannot be identified by content).
    """

    name: str
    aco_params: Mapping[str, Any] | None = None
    func: LayeringAlgorithm | None = None
    n_colonies: int = 1

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def builtin(cls, name: str) -> "MethodSpec":
        """Spec for one of the registered baseline methods."""
        if name not in BUILTIN_METHODS:
            raise ValidationError(
                f"unknown builtin method {name!r}; choose from {sorted(BUILTIN_METHODS)}"
            )
        return cls(name=name)

    @classmethod
    def ant_colony(
        cls,
        params: ACOParams | None = None,
        *,
        name: str = ANT_COLONY,
        n_colonies: int = 1,
    ) -> "MethodSpec":
        """Spec for the Ant Colony with explicit parameters (default: paper config, seed 0).

        ``n_colonies > 1`` runs every cell as an independent-colony portfolio
        through the shared-memory colony runtime and keeps the best layering.
        """
        if n_colonies < 1:
            raise ValidationError(f"n_colonies must be >= 1, got {n_colonies}")
        params = params if params is not None else ACOParams(seed=0)
        return cls(name=name, aco_params=params.as_dict(), n_colonies=n_colonies)

    @classmethod
    def from_callable(cls, name: str, func: LayeringAlgorithm) -> "MethodSpec":
        """Spec wrapping an arbitrary ``graph -> Layering`` callable."""
        return cls(name=name, func=func)

    # ------------------------------------------------------------------ #
    # capabilities
    # ------------------------------------------------------------------ #

    @property
    def shippable(self) -> bool:
        """Whether the spec can cross a process boundary."""
        return self.func is None

    @property
    def cacheable(self) -> bool:
        """Whether results of this method may be stored in the result cache."""
        return self.func is None

    def resolve(self) -> LayeringAlgorithm:
        """Materialise the actual ``graph -> Layering`` callable."""
        if self.func is not None:
            return self.func
        if self.aco_params is not None:
            params = ACOParams(**dict(self.aco_params))
            if self.n_colonies > 1:
                n_colonies = self.n_colonies
                # max_workers=1 keeps the portfolio as one in-process
                # lockstep batch — cells may already be running inside
                # process-pool workers, which must not spawn grandchildren.
                return lambda g: parallel_aco_layering(
                    g,
                    params,
                    n_colonies=n_colonies,
                    executor="colonies",
                    max_workers=1,
                ).layering
            return lambda g: aco_layering(g, params)
        if self.name in BUILTIN_METHODS:
            return BUILTIN_METHODS[self.name]
        raise ValidationError(f"cannot resolve method spec {self.name!r}")

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form shipped to process-pool workers."""
        if not self.shippable:
            raise ValidationError(
                f"method {self.name!r} wraps a callable and cannot cross a process boundary"
            )
        return {
            "name": self.name,
            "aco_params": dict(self.aco_params) if self.aco_params is not None else None,
            "n_colonies": self.n_colonies,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MethodSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            aco_params=data.get("aco_params"),
            n_colonies=data.get("n_colonies", 1),
        )

    def cache_token(self) -> dict[str, Any]:
        """The method's contribution to the content-addressed cache key."""
        if not self.cacheable:
            raise ValidationError(f"method {self.name!r} wraps a callable and is not cacheable")
        return self.to_dict()


def default_method_specs(
    *,
    aco_params: ACOParams | None = None,
    include_aco: bool = True,
    n_colonies: int = 1,
) -> dict[str, MethodSpec]:
    """The paper's five algorithms as executor-portable method specs.

    The spec-based twin of
    :func:`repro.experiments.runner.default_algorithms`: same names, same
    defaults, but the Ant Colony parameters travel declaratively so every
    entry can be dispatched to process-pool workers and cached.
    ``n_colonies > 1`` upgrades the Ant Colony entry to a multi-colony
    portfolio run through the shared-memory runtime.
    """
    specs = {name: MethodSpec.builtin(name) for name in BUILTIN_METHODS}
    if include_aco:
        specs[ANT_COLONY] = MethodSpec.ant_colony(aco_params, n_colonies=n_colonies)
    return specs


@dataclass(frozen=True)
class WorkUnit:
    """One experiment cell: apply one method to one graph at one ``nd_width``."""

    graph: DiGraph
    method: MethodSpec
    nd_width: float = 1.0
    graph_name: str = ""
    vertex_count: int | None = None
    label: str = ""

    @property
    def algorithm(self) -> str:
        """Display name of the method (explicit label wins over the spec name)."""
        return self.label or self.method.name

    @property
    def resolved_graph_name(self) -> str:
        return self.graph_name or f"graph-n{self.graph.n_vertices}"

    @property
    def resolved_vertex_count(self) -> int:
        return self.vertex_count if self.vertex_count is not None else self.graph.n_vertices


@dataclass(frozen=True)
class CellResult:
    """Outcome of one work unit."""

    algorithm: str
    graph_name: str
    vertex_count: int
    nd_width: float
    metrics: LayeringMetrics
    running_time: float
    cached: bool = False


def _execute_unit(unit: WorkUnit) -> tuple[LayeringMetrics, float]:
    """Run one cell: time the algorithm, then evaluate the paper's metrics."""
    algorithm = unit.method.resolve()
    start = time.perf_counter()
    layering = algorithm(unit.graph)
    elapsed = time.perf_counter() - start
    metrics = evaluate_layering(unit.graph, layering, nd_width=unit.nd_width)
    return metrics, elapsed


def _decode_graph_table(payload: Mapping[str, dict[str, Any]]) -> dict[str, DiGraph]:
    """Per-worker state: decode the shared ``ref -> graph JSON`` table once."""
    return {ref: from_json_dict(graph_json) for ref, graph_json in payload.items()}


def _run_cell(
    state: Mapping[str, DiGraph], ref: str, spec_dict: dict[str, Any], nd_width: float
) -> tuple[LayeringMetrics, float]:
    """Process-pool worker entry point for one shippable cell."""
    unit = WorkUnit(
        graph=state[ref], method=MethodSpec.from_dict(spec_dict), nd_width=nd_width
    )
    return _execute_unit(unit)


def _run_indexed_unit(
    state: Sequence[WorkUnit], index: int
) -> tuple[LayeringMetrics, float]:
    """Thread-pool / serial worker entry point: run the *index*-th pending unit."""
    return _execute_unit(state[index])


@dataclass
class ExperimentEngine:
    """Dispatch experiment cells over an executor, with optional result caching.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"`` or
        ``"colonies"`` (process-style dispatch; pair with multi-colony
        Ant Colony specs, see :meth:`MethodSpec.ant_colony`).
    jobs:
        Worker cap for the pool back ends (default: ``REPRO_JOBS`` or the
        CPU count, clamped to the pending cell count).
    cache:
        Optional :class:`~repro.experiments.cache.ResultCache`; cacheable
        cells found in it are returned without recomputation
        (``CellResult.cached`` is ``True``) and fresh results are stored.
    """

    executor: str = "serial"
    jobs: int | None = None
    cache: ResultCache | None = None

    def __post_init__(self) -> None:
        if self.executor not in ENGINE_EXECUTORS:
            raise ValidationError(
                f"executor must be one of {ENGINE_EXECUTORS}, got {self.executor!r}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {self.jobs}")

    @classmethod
    def from_options(
        cls,
        *,
        executor: str | None = None,
        jobs: int | None = None,
        cache_dir: str | None = None,
    ) -> "ExperimentEngine":
        """Build an engine from CLI-style options (``None`` means default)."""
        return cls(
            executor=executor or "serial",
            jobs=jobs,
            cache=ResultCache(cache_dir) if cache_dir else None,
        )

    def run(self, units: Sequence[WorkUnit]) -> list[CellResult]:
        """Run every unit and return one :class:`CellResult` per unit, in order."""
        units = list(units)
        if (
            self.executor == "colonies"
            and units
            and not any(unit.method.n_colonies > 1 for unit in units)
        ):
            warnings.warn(
                "executor='colonies' dispatches cells like 'process', and no "
                "method spec carries n_colonies > 1 — the multi-colony "
                "runtime is not in play.  Pass --colonies K (or "
                "MethodSpec.ant_colony(..., n_colonies=K)) to run portfolio "
                "cells.",
                RuntimeWarning,
                stacklevel=2,
            )
        results: list[CellResult | None] = [None] * len(units)
        keys: list[str | None] = [None] * len(units)

        # The graph JSON (and its digest) is computed once per distinct graph
        # object, shared by the cache keys and the process-pool payload.
        json_memo: dict[int, dict[str, Any]] = {}
        digest_memo: dict[int, str] = {}

        def graph_json(graph: DiGraph) -> dict[str, Any]:
            key = id(graph)
            if key not in json_memo:
                json_memo[key] = to_json_dict(graph)
            return json_memo[key]

        def graph_digest(graph: DiGraph) -> str:
            key = id(graph)
            if key not in digest_memo:
                digest_memo[key] = content_digest(graph_json(graph))
            return digest_memo[key]

        def finished(unit: WorkUnit, metrics: LayeringMetrics, elapsed: float, cached: bool) -> CellResult:
            return CellResult(
                algorithm=unit.algorithm,
                graph_name=unit.resolved_graph_name,
                vertex_count=unit.resolved_vertex_count,
                nd_width=unit.nd_width,
                metrics=metrics,
                running_time=elapsed,
                cached=cached,
            )

        pending: list[tuple[int, WorkUnit]] = []
        for i, unit in enumerate(units):
            if self.cache is not None and unit.method.cacheable:
                key = cache_key(
                    graph_digest(unit.graph), unit.method.cache_token(), unit.nd_width
                )
                keys[i] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = finished(unit, hit.metrics, hit.running_time, True)
                    continue
            pending.append((i, unit))

        if pending:
            computed = self._dispatch(pending, graph_json)
            for (i, unit), (metrics, elapsed) in zip(pending, computed):
                results[i] = finished(unit, metrics, elapsed, False)
                if keys[i] is not None:
                    assert self.cache is not None
                    self.cache.put(keys[i], metrics, elapsed)

        return [r for r in results if r is not None]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _dispatch(
        self,
        pending: Sequence[tuple[int, WorkUnit]],
        graph_json: Callable[[DiGraph], dict[str, Any]],
    ) -> list[tuple[LayeringMetrics, float]]:
        """Compute the pending units, preserving their order."""
        if self.executor not in ("process", "colonies"):
            pending_units = [unit for _, unit in pending]
            return map_with_state(
                _run_indexed_unit,
                [(k,) for k in range(len(pending_units))],
                executor=self.executor,
                max_workers=self.jobs,
                shared_state=pending_units,
            )

        shippable = [(slot, unit) for slot, (_, unit) in enumerate(pending) if unit.method.shippable]
        local = [(slot, unit) for slot, (_, unit) in enumerate(pending) if not unit.method.shippable]
        computed: list[tuple[LayeringMetrics, float] | None] = [None] * len(pending)

        if shippable:
            # Build the shared graph table: each distinct graph is serialised
            # once and shipped to each worker once (pool initializer).
            ref_by_graph: dict[int, str] = {}
            table: dict[str, dict[str, Any]] = {}
            for _, unit in shippable:
                gid = id(unit.graph)
                if gid not in ref_by_graph:
                    ref = f"g{len(ref_by_graph)}"
                    ref_by_graph[gid] = ref
                    table[ref] = graph_json(unit.graph)
            tasks = [
                (ref_by_graph[id(unit.graph)], unit.method.to_dict(), unit.nd_width)
                for _, unit in shippable
            ]
            outcomes = map_with_state(
                _run_cell,
                tasks,
                executor="process",
                max_workers=self.jobs,
                init_fn=_decode_graph_table,
                payload=table,
            )
            for (slot, _), outcome in zip(shippable, outcomes):
                computed[slot] = outcome

        # Callable-backed methods cannot be pickled; run them in-process.
        for slot, unit in local:
            computed[slot] = _execute_unit(unit)

        return [c for c in computed if c is not None]
