"""Content-addressed on-disk cache for experiment cell results.

A *cell* is one ``(graph, layering method, nd_width)`` work unit of the
experiment engine (:mod:`repro.experiments.engine`).  Its cache key is the
SHA-256 digest of a canonical JSON payload combining

* the digest of the graph's own canonical JSON serialisation
  (:func:`repro.graph.io.to_json_dict`),
* the method's cache token (its name plus, for the Ant Colony, the full
  ``ACOParams`` dictionary — so changing any parameter, including the seed,
  changes the key), and
* the ``nd_width`` used by the metrics.

Because the key is derived purely from content, a different corpus seed,
parameter set or graph produces a different key, and repeated ``repro-dag
figures`` / ``compare`` / tuning runs over the same inputs become
incremental — no invalidation logic is needed for *input* changes.  Changes
to the *algorithms themselves* are covered by hashing ``repro.__version__``
into every key: a release that alters any layering algorithm's behaviour
must bump the package version (or :data:`CACHE_VERSION`), which orphans all
previous entries instead of silently serving stale metrics from a
persistent ``--cache-dir``.

Layout on disk: ``<cache-dir>/<first two hex chars>/<full key>.json``, one
small JSON document per cell holding the :class:`~repro.layering.metrics.
LayeringMetrics` fields plus the originally measured running time.  Files
are written atomically (temp file + rename) so concurrent runs sharing a
cache directory never observe torn entries; unreadable or foreign files are
treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import repro
from repro.layering.metrics import LayeringMetrics

__all__ = ["CachedCell", "ResultCache", "canonical_json", "content_digest", "cache_key"]

#: Format marker stored in every cache entry.
CACHE_FORMAT = "repro-cell-result"

#: Bump to invalidate every existing entry when the result schema changes.
CACHE_VERSION = 1

_METRIC_FIELDS = (
    "n_vertices",
    "n_edges",
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "objective",
    "nd_width",
)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) used for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def cache_key(graph_digest: str, method_token: Any, nd_width: float) -> str:
    """The content-addressed key of one experiment cell."""
    return content_digest(
        {
            "version": CACHE_VERSION,
            "package": repro.__version__,
            "graph": graph_digest,
            "method": method_token,
            "nd_width": nd_width,
        }
    )


@dataclass(frozen=True)
class CachedCell:
    """A cache hit: the stored metrics plus the originally measured running time."""

    metrics: LayeringMetrics
    running_time: float


class ResultCache:
    """Directory-backed content-addressed store of :class:`CachedCell` entries."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (two-character shard directories)."""
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> CachedCell | None:
        """Look up a cell result; any unreadable or foreign file is a miss."""
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("format") != CACHE_FORMAT:
            return None
        try:
            metrics = LayeringMetrics(**{f: record["metrics"][f] for f in _METRIC_FIELDS})
            running_time = float(record["running_time"])
        except (KeyError, TypeError, ValueError):
            return None
        return CachedCell(metrics=metrics, running_time=running_time)

    def put(self, key: str, metrics: LayeringMetrics, running_time: float) -> None:
        """Store one cell result atomically."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "metrics": metrics.as_dict(),
            "running_time": running_time,
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of entries currently stored (walks the shard directories)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))
