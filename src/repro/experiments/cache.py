"""Content-addressed on-disk cache for experiment cell results.

A *cell* is one ``(graph, layering method, nd_width)`` work unit of the
experiment engine (:mod:`repro.experiments.engine`).  Its cache key is the
SHA-256 digest of a canonical JSON payload combining

* the digest of the graph's own canonical JSON serialisation
  (:func:`repro.graph.io.to_json_dict`),
* the method's cache token (its name plus, for the Ant Colony, the full
  ``ACOParams`` dictionary — so changing any parameter, including the seed,
  changes the key), and
* the ``nd_width`` used by the metrics.

Because the key is derived purely from content, a different corpus seed,
parameter set or graph produces a different key, and repeated ``repro-dag
figures`` / ``compare`` / tuning runs over the same inputs become
incremental — no invalidation logic is needed for *input* changes.  Changes
to the *algorithms themselves* are covered by hashing ``repro.__version__``
into every key: a release that alters any layering algorithm's behaviour
must bump the package version (or :data:`CACHE_VERSION`), which orphans all
previous entries instead of silently serving stale metrics from a
persistent ``--cache-dir``.

Layout on disk: ``<cache-dir>/<first two hex chars>/<full key>.json``, one
small JSON document per cell holding the :class:`~repro.layering.metrics.
LayeringMetrics` fields plus the originally measured running time.  Files
are written atomically (temp file + rename) so concurrent runs sharing a
cache directory never observe torn entries; unreadable or foreign files are
treated as misses.

Integrity: every entry embeds a SHA-256 checksum of its own payload,
verified on read.  An entry whose bytes rot on disk (bit flips, truncated
writes on a dying filesystem, a torn copy of a cache directory between
machines) is *quarantined* — moved into ``<cache-dir>/corrupt/`` — and the
lookup reports a miss, so the cell is recomputed instead of poisoning the
aggregate tables with garbled metrics.  ``repro-dag cache stats`` reports
the quarantine count and ``repro-dag cache prune --older-than`` sweeps aged
quarantine files along with ordinary entries.

Because keys are never invalidated, a long-lived ``--cache-dir`` grows
without bound (version bumps orphan old entries on disk).
:meth:`ResultCache.stats` and :meth:`ResultCache.prune` (CLI: ``repro-dag
cache {stats,prune}``) keep it in check: prune drops entries older than a
cutoff and/or evicts oldest-first down to a size budget.  Both are safe
under concurrent readers — eviction is a plain ``unlink`` and every reader
already treats a missing file as a miss.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import repro
from repro.layering.metrics import LayeringMetrics
from repro.utils import chaos, resources
from repro.utils.exceptions import ValidationError

__all__ = [
    "CachedCell",
    "CacheHitStats",
    "CacheStats",
    "DEFAULT_MEMORY_ENTRIES",
    "PruneResult",
    "QUARANTINE_DIR",
    "ResultCache",
    "canonical_json",
    "content_digest",
    "cache_key",
]

#: Default capacity of the in-process LRU layer in front of the disk store —
#: comfortably above the full 1277-graph × 5-algorithm corpus, a few MiB of
#: small metric records at most.
DEFAULT_MEMORY_ENTRIES = 16384

#: Format marker stored in every cache entry.
CACHE_FORMAT = "repro-cell-result"

#: Bump to invalidate every existing entry when the result schema changes.
#: Version 2 added the embedded SHA-256 payload checksum, so every entry
#: reachable from a current key carries one — a checksum-less entry at a
#: current key can only be corruption.
CACHE_VERSION = 2

#: Quarantine subdirectory for entries that failed integrity verification.
QUARANTINE_DIR = "corrupt"

_METRIC_FIELDS = (
    "n_vertices",
    "n_edges",
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "objective",
    "nd_width",
)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) used for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def cache_key(graph_digest: str, method_token: Any, nd_width: float) -> str:
    """The content-addressed key of one experiment cell."""
    return content_digest(
        {
            "version": CACHE_VERSION,
            "package": repro.__version__,
            "graph": graph_digest,
            "method": method_token,
            "nd_width": nd_width,
        }
    )


@dataclass(frozen=True)
class CachedCell:
    """A cache hit: the stored metrics plus the originally measured running time."""

    metrics: LayeringMetrics
    running_time: float


@dataclass(frozen=True)
class CacheStats:
    """Aggregate shape of a cache directory (``repro-dag cache stats``)."""

    entries: int
    total_bytes: int
    oldest_mtime: float | None
    newest_mtime: float | None
    #: Files sitting in the ``corrupt/`` quarantine (failed checksum reads).
    quarantined: int = 0


@dataclass(frozen=True)
class CacheHitStats:
    """Per-process hit/miss counters for both cache layers.

    ``memory_*`` counts lookups against the in-process LRU; ``disk_*``
    counts the lookups that fell through to the JSON files.  A warm
    full-corpus re-run should be (almost) all memory hits — re-reading and
    re-parsing one file per cell was pure overhead.
    """

    memory_hits: int
    memory_misses: int
    disk_hits: int
    disk_misses: int


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`ResultCache.prune` pass."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int
    #: Quarantined files swept by this pass (``--older-than`` only).
    quarantine_removed: int = 0


class ResultCache:
    """Directory-backed content-addressed store of :class:`CachedCell` entries.

    Lookups go through an in-process LRU first (*memory_entries* records,
    ``0`` disables it): keys are content-addressed, so a remembered entry can
    never go stale, and a warm full-corpus run stops re-reading and
    re-parsing one JSON file per cell.  :meth:`hit_stats` reports the
    per-layer hit/miss counters (``repro-dag cache stats`` prints them).
    """

    def __init__(
        self, directory: str | Path, *, memory_entries: int = DEFAULT_MEMORY_ENTRIES
    ) -> None:
        if memory_entries < 0:
            raise ValidationError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.directory = Path(directory)
        self.memory_entries = memory_entries
        self._memory: OrderedDict[str, CachedCell] = OrderedDict()
        self._memory_hits = 0
        self._memory_misses = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._quarantined = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (two-character shard directories)."""
        return self.directory / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where entries that failed integrity verification are moved."""
        return self.directory / QUARANTINE_DIR

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry into ``corrupt/`` instead of re-reading it forever.

        Non-destructive on purpose: the bytes stay available for post-mortem
        inspection, but they are out of the lookup path so every future read
        of the key is an honest miss.  Concurrency-safe: the move is one
        atomic ``os.replace``; a source that vanished means a concurrent
        reader quarantined (or a prune evicted) the same file first, and a
        ``corrupt/`` directory swept from under us by a concurrent
        ``prune --older-than`` is recreated and the move retried.
        """
        target = self.quarantine_dir / path.name
        for _ in range(3):
            try:
                target.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, target)
            except FileNotFoundError:
                if not path.exists():
                    return  # another process moved/removed it first
                continue  # quarantine dir pruned from under us: re-create it
            except OSError:
                return
            self._quarantined += 1
            return

    def _remember(self, key: str, cell: CachedCell) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = cell
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def hit_stats(self) -> CacheHitStats:
        """This process's hit/miss counters for the memory and disk layers."""
        return CacheHitStats(
            memory_hits=self._memory_hits,
            memory_misses=self._memory_misses,
            disk_hits=self._disk_hits,
            disk_misses=self._disk_misses,
        )

    def get(self, key: str) -> CachedCell | None:
        """Look up a cell result, verifying the entry's embedded checksum.

        A missing file is an ordinary miss.  A file that is present but
        unparsable, foreign, checksum-less or checksum-mismatched is
        *corrupt*: it is quarantined to ``corrupt/`` and reported as a miss,
        so the cell is recomputed rather than trusted.
        """
        cell = self._memory.get(key)
        if cell is not None:
            self._memory_hits += 1
            self._memory.move_to_end(key)
            return cell
        self._memory_misses += 1
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self._disk_misses += 1
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            record = None  # torn or garbled JSON
        stored_sha = record.pop("sha256", None) if isinstance(record, dict) else None
        if (
            not isinstance(record, dict)
            or record.get("format") != CACHE_FORMAT
            or not isinstance(stored_sha, str)
            or content_digest(record) != stored_sha
        ):
            self._quarantine(path)
            self._disk_misses += 1
            return None
        try:
            metrics = LayeringMetrics(**{f: record["metrics"][f] for f in _METRIC_FIELDS})
            running_time = float(record["running_time"])
        except (KeyError, TypeError, ValueError):
            # Checksum-valid but unparsable: schema skew, not bit rot.  A
            # version bump should have orphaned it; treat as a plain miss.
            self._disk_misses += 1
            return None
        cell = CachedCell(metrics=metrics, running_time=running_time)
        self._disk_hits += 1
        self._remember(key, cell)
        return cell

    def put(
        self,
        key: str,
        metrics: LayeringMetrics,
        running_time: float,
        *,
        chaos_id: str | None = None,
        attempt: int = 1,
    ) -> None:
        """Store one cell result atomically, with an embedded checksum.

        A concurrent ``prune`` may rmdir the shard directory between our
        ``mkdir`` and ``mkstemp`` (it only removes shards that are empty at
        that instant); recreate and retry instead of letting the race abort
        a running experiment.

        *chaos_id* opts the write into ``corrupt-cache`` and ``enospc``
        chaos rules (the cell id the rules are matched against): a firing
        ``corrupt-cache`` rule garbles the entry's bytes on disk after the
        atomic write, rehearsing exactly the corruption the checksum
        verification exists to catch; a firing ``enospc`` rule makes the
        write fail as a full disk would.

        Disk-full safety: the disk layer is guarded by the resource
        governor's ``cache-disk`` breaker.  A write that fails with
        :class:`OSError` (``ENOSPC`` prominently) degrades the cache to
        memory-only — the entry stays served from the LRU, the failure is
        logged once, and the disk layer is re-probed after a cooldown —
        instead of crashing the run over an optimisation.
        """
        corrupting = chaos_id is not None and chaos.should_corrupt(chaos_id, attempt)
        if not corrupting:
            # A deliberately-corrupted entry must not linger in the memory
            # layer, or the very lookup the chaos rule wants to poison would
            # be served the healthy value.
            self._remember(key, CachedCell(metrics=metrics, running_time=running_time))
        governor = resources.governor()
        if not governor.allow("cache-disk"):
            return  # memory-only: the disk layer is fenced off
        path = self.path_for(key)
        record = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "metrics": metrics.as_dict(),
            "running_time": running_time,
        }
        record["sha256"] = content_digest(record)
        try:
            if chaos_id is not None and chaos.should_enospc(chaos_id, attempt):
                raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC), str(path))
            for retry in range(3):
                path.parent.mkdir(parents=True, exist_ok=True)
                try:
                    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                except FileNotFoundError:
                    if retry == 2:
                        raise
                    continue  # shard pruned from under us: re-create it
                break
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            governor.record_failure("cache-disk", str(exc))
            return
        governor.record_success("cache-disk")
        if corrupting:
            self._garble(path)

    @staticmethod
    def _garble(path: Path) -> None:
        """Flip the tail of an entry's bytes in place (chaos ``corrupt-cache``)."""
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(0, len(data) - 16)] + b"\x00garbled\x00")
        except OSError:
            pass

    def __len__(self) -> int:
        """Number of entries currently stored (walks the shard directories)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def _scan(self) -> list[tuple[Path, int, float]]:
        """``(path, size, mtime)`` for every entry file; vanished files skipped."""
        entries: list[tuple[Path, int, float]] = []
        try:
            for path in self.directory.glob("??/*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # concurrently pruned by another process
                entries.append((path, stat.st_size, stat.st_mtime))
        except OSError:
            pass  # a shard swept mid-walk: report what was seen
        return entries

    def _scan_quarantine(self) -> list[tuple[Path, int, float]]:
        """``(path, size, mtime)`` for every quarantined file.

        Tolerates the directory being swept by a concurrent prune while we
        iterate it (``iterdir`` lists lazily, so the deletion can land
        mid-iteration, not just before the ``is_dir`` check).
        """
        entries: list[tuple[Path, int, float]] = []
        if not self.quarantine_dir.is_dir():
            return entries
        try:
            for path in self.quarantine_dir.iterdir():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if path.is_file():
                    entries.append((path, stat.st_size, stat.st_mtime))
        except OSError:
            pass  # quarantine dir removed from under the iteration
        return entries

    def stats(self) -> CacheStats:
        """Entry count, total size, age range and quarantine count of the cache."""
        entries = self._scan()
        mtimes = [m for _, _, m in entries]
        return CacheStats(
            entries=len(entries),
            total_bytes=sum(size for _, size, _ in entries),
            oldest_mtime=min(mtimes) if mtimes else None,
            newest_mtime=max(mtimes) if mtimes else None,
            quarantined=len(self._scan_quarantine()),
        )

    def prune(
        self,
        *,
        max_size_bytes: int | None = None,
        older_than_seconds: float | None = None,
        free_below_bytes: int | None = None,
        now: float | None = None,
    ) -> PruneResult:
        """Evict entries: everything older than the cutoff first, then
        oldest-first until the directory fits the size budget, then
        oldest-first until the filesystem has the requested free space.

        Quarantined files (``corrupt/``) count toward ``max_size_bytes``
        and are evicted in the same oldest-first order as ordinary entries
        — bit-rotted bytes kept for post-mortems must not be able to hold a
        size-capped cache hostage.  ``free_below_bytes`` is the disk-full
        watermark (CLI: ``--free-below``): when the cache directory's
        filesystem has less free space than it, entries are evicted
        oldest-first until the eviction plan covers the deficit.

        Safe under concurrent readers and writers: eviction is a plain
        atomic ``unlink`` (readers already treat a missing file as a miss),
        files that vanish mid-prune are ignored, and empty shard directories
        are removed only when they stay empty.  At least one criterion is
        required — a bare prune deleting everything would be a foot-gun.
        """
        if max_size_bytes is None and older_than_seconds is None and free_below_bytes is None:
            raise ValidationError(
                "prune needs --max-size, --older-than and/or --free-below"
            )
        # The memory layer mirrors the disk store; dropping it wholesale
        # keeps the contract that pruned entries are misses (and pruning is
        # rare maintenance, so a cold LRU afterwards costs nothing).
        self._memory.clear()
        if max_size_bytes is not None and max_size_bytes < 0:
            raise ValidationError(f"max_size_bytes must be >= 0, got {max_size_bytes}")
        if older_than_seconds is not None and older_than_seconds < 0:
            raise ValidationError(
                f"older_than_seconds must be >= 0, got {older_than_seconds}"
            )
        if free_below_bytes is not None and free_below_bytes < 0:
            raise ValidationError(
                f"free_below_bytes must be >= 0, got {free_below_bytes}"
            )
        now = now if now is not None else time.time()
        # One oldest-first pool mixing ordinary entries and quarantined
        # files (tagged), so size/free-space budgets account for both.
        pool: list[tuple[Path, int, float, bool]] = sorted(
            [(p, s, m, False) for p, s, m in self._scan()]
            + [(p, s, m, True) for p, s, m in self._scan_quarantine()],
            key=lambda e: (e[2], e[0].name),
        )
        doomed: list[tuple[Path, int, float, bool]] = []
        if older_than_seconds is not None:
            cutoff = now - older_than_seconds
            pool_kept = [e for e in pool if e[2] >= cutoff]
            doomed.extend(e for e in pool if e[2] < cutoff)
            pool = pool_kept
        if max_size_bytes is not None:
            kept_bytes = sum(size for _, size, _, _ in pool)
            while pool and kept_bytes > max_size_bytes:
                entry = pool.pop(0)
                doomed.append(entry)
                kept_bytes -= entry[1]
        if free_below_bytes is not None:
            try:
                disk_free = shutil.disk_usage(self.directory).free
            except OSError:
                disk_free = None  # directory gone: nothing to evict anyway
            if disk_free is not None and disk_free < free_below_bytes:
                planned = sum(size for _, size, _, _ in doomed)
                deficit = free_below_bytes - disk_free
                while pool and planned < deficit:
                    entry = pool.pop(0)
                    doomed.append(entry)
                    planned += entry[1]
        removed = 0
        freed = 0
        quarantine_removed = 0
        touched_shards: set[Path] = set()
        for path, size, _, quarantined in doomed:
            try:
                path.unlink()
            except OSError:
                continue  # already gone: someone else pruned it
            if quarantined:
                quarantine_removed += 1
            else:
                removed += 1
                freed += size
                touched_shards.add(path.parent)
        for shard in touched_shards:
            try:
                shard.rmdir()  # only succeeds if the shard is now empty
            except OSError:
                pass
        if quarantine_removed:
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        kept_entries = [e for e in pool if not e[3]]
        return PruneResult(
            removed=removed,
            freed_bytes=freed,
            kept=len(kept_entries),
            kept_bytes=sum(size for _, size, _, _ in kept_entries),
            quarantine_removed=quarantine_removed,
        )
