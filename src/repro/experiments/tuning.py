"""Parameter tuning sweeps (paper, Section VIII).

The paper tunes the pheromone/heuristic exponents α and β over ``{1..5}²``
(best: α=3, β=5; adopted: α=1, β=3 because it is nearly as good and faster)
and the dummy-vertex width ``nd_width`` over ``{0.1, 0.2, …, 1.2}`` (best:
1.1; adopted: 1.0).  The functions here reproduce both sweeps on an arbitrary
corpus subset and report, per setting, the mean objective ``1 / (H + W)``,
the mean width and height, and the mean running time, which is all the paper
uses to justify its choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.aco.params import ACOParams
from repro.datasets.corpus import CorpusGraph
from repro.experiments.engine import CellResult, ExperimentEngine, MethodSpec, WorkUnit
from repro.utils.exceptions import ValidationError

__all__ = [
    "SweepPoint",
    "SweepResult",
    "parameter_sweep",
    "alpha_beta_sweep",
    "nd_width_sweep",
    "best_sweep_setting",
]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregate outcome of one parameter setting over the sweep corpus."""

    setting: tuple[float, ...]
    mean_objective: float
    mean_width_including_dummies: float
    mean_height: float
    mean_running_time: float


@dataclass
class SweepResult:
    """All points of a sweep plus the axis labels of the swept parameters.

    ``failures`` holds the cells the engine fault-isolated (out of
    ``cells_total`` submitted); they are excluded from every point's means.
    A setting whose cells *all* failed contributes no point at all.
    """

    parameter_names: tuple[str, ...]
    points: list[SweepPoint]
    failures: list[CellResult] = field(default_factory=list)
    cells_total: int = 0

    def best(self) -> SweepPoint:
        """The point with the highest mean objective (ties: cheapest setting).

        Equal-quality settings are ordered by ascending setting sum, then
        ascending setting tuple — the paper's "nearly as good but cheaper"
        preference made deterministic.  (Measured running time is too noisy
        to order exact ties reproducibly.)
        """
        return max(
            self.points,
            key=lambda p: (
                p.mean_objective,
                -sum(p.setting),
                tuple(-s for s in p.setting),
            ),
        )

    def as_dict(self) -> dict[tuple[float, ...], SweepPoint]:
        """Points keyed by their setting tuple."""
        return {p.setting: p for p in self.points}


def parameter_sweep(
    corpus: Sequence[CorpusGraph],
    parameter_names: tuple[str, ...],
    settings: Sequence[tuple[tuple[float, ...], ACOParams]],
    *,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> SweepResult:
    """Run the Ant Colony over ``corpus`` for every parameter setting.

    The generic core shared by :func:`alpha_beta_sweep` and
    :func:`nd_width_sweep`: every ``(setting, graph)`` cell is submitted
    through the experiment engine — so the whole sweep parallelises across
    settings *and* graphs, and a warm result cache turns repeated sweeps
    into pure lookups.  Cells are streamed out of the engine in submission
    order and folded into per-setting running sums the moment they complete
    (O(settings) aggregation state); failed cells are skipped and collected
    on :attr:`SweepResult.failures`.
    """
    if not corpus:
        raise ValidationError("parameter sweep needs at least one corpus graph")
    if not settings:
        raise ValidationError("parameter sweep needs at least one setting")
    engine = engine if engine is not None else ExperimentEngine()
    units = [
        WorkUnit(
            graph=entry.graph,
            method=MethodSpec.ant_colony(params, n_colonies=n_colonies),
            nd_width=params.nd_width,
            graph_name=entry.name,
            vertex_count=entry.vertex_count,
        )
        for setting, params in settings
        for entry in corpus
    ]
    per_setting = len(corpus)
    # Per-setting accumulators: (count, Σobjective, Σwidth, Σheight, Σruntime).
    counts = [0] * len(settings)
    sums = [[0.0, 0.0, 0.0, 0.0] for _ in settings]
    failures: list[CellResult] = []
    for i, cell in enumerate(engine.run_iter(units)):
        if not cell.ok:
            failures.append(cell)
            continue
        assert cell.metrics is not None
        j = i // per_setting
        counts[j] += 1
        sums[j][0] += cell.metrics.objective
        sums[j][1] += cell.metrics.width_including_dummies
        sums[j][2] += cell.metrics.height
        sums[j][3] += cell.running_time
    points = [
        SweepPoint(
            setting=setting,
            mean_objective=sums[j][0] / counts[j],
            mean_width_including_dummies=sums[j][1] / counts[j],
            mean_height=sums[j][2] / counts[j],
            mean_running_time=sums[j][3] / counts[j],
        )
        for j, (setting, _params) in enumerate(settings)
        if counts[j] > 0
    ]
    if not points:
        raise ValidationError(
            f"every cell of the sweep failed ({len(failures)} failures); "
            "nothing to aggregate"
        )
    return SweepResult(
        parameter_names=parameter_names,
        points=points,
        failures=failures,
        cells_total=len(units),
    )


def alpha_beta_sweep(
    corpus: Sequence[CorpusGraph],
    *,
    alphas: Sequence[float] = (1, 2, 3, 4, 5),
    betas: Sequence[float] = (1, 2, 3, 4, 5),
    base_params: ACOParams | None = None,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> SweepResult:
    """Sweep the (α, β) grid of Section VIII over *corpus*.

    Every setting shares the seed (and every other parameter) of
    *base_params*, so differences come only from the exponents.
    """
    base = base_params if base_params is not None else ACOParams(seed=0)
    settings = [
        ((float(a), float(b)), base.replace(alpha=float(a), beta=float(b)))
        for a in alphas
        for b in betas
    ]
    return parameter_sweep(
        corpus, ("alpha", "beta"), settings, engine=engine, n_colonies=n_colonies
    )


def nd_width_sweep(
    corpus: Sequence[CorpusGraph],
    *,
    nd_widths: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2),
    base_params: ACOParams | None = None,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> SweepResult:
    """Sweep the dummy-vertex width as in Section VIII.

    Note that ``nd_width`` affects both the search (heuristic information and
    objective) and the reported width metric, exactly as in the paper.
    """
    base = base_params if base_params is not None else ACOParams(seed=0)
    settings = [((float(w),), base.replace(nd_width=float(w))) for w in nd_widths]
    return parameter_sweep(
        corpus, ("nd_width",), settings, engine=engine, n_colonies=n_colonies
    )


def best_sweep_setting(result: SweepResult) -> tuple[float, ...]:
    """Convenience accessor: the setting tuple of the best sweep point."""
    return result.best().setting
