"""Run layering algorithms over a corpus and aggregate the paper's metrics.

The evaluation of the paper compares five algorithms — LPL, LPL+PL, MinWidth,
MinWidth+PL and the Ant Colony — on five criteria, averaged per vertex-count
group.  :func:`run_comparison` does exactly that for any algorithm set and any
corpus, recording the per-graph metrics and wall-clock running times and
exposing group means through :class:`ComparisonResult`, which is the data
source for every figure module and benchmark.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.datasets.corpus import CorpusGraph
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.promote import promote_layering
from repro.utils.exceptions import ValidationError

__all__ = [
    "LayeringAlgorithm",
    "AlgorithmResult",
    "ComparisonResult",
    "default_algorithms",
    "run_on_graph",
    "run_comparison",
]

LayeringAlgorithm = Callable[[DiGraph], Layering]

#: Metric names understood by :meth:`ComparisonResult.series`.
METRIC_NAMES = (
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "running_time",
    "objective",
)


def default_algorithms(
    *,
    aco_params: ACOParams | None = None,
    include_aco: bool = True,
) -> dict[str, LayeringAlgorithm]:
    """The five algorithms of the paper's evaluation, keyed by display name.

    Parameters
    ----------
    aco_params:
        Parameters for the Ant Colony entry; defaults to the paper's adopted
        configuration (α=1, β=3, 10 tours) with a fixed seed.
    include_aco:
        Set to ``False`` to get only the four baselines (handy for quick
        tests of the harness itself).
    """
    params = aco_params if aco_params is not None else ACOParams(seed=0)
    algorithms: dict[str, LayeringAlgorithm] = {
        "LPL": longest_path_layering,
        "LPL+PL": lambda g: promote_layering(g, longest_path_layering(g)),
        "MinWidth": minwidth_layering_sweep,
        "MinWidth+PL": lambda g: promote_layering(g, minwidth_layering_sweep(g)),
    }
    if include_aco:
        algorithms["AntColony"] = lambda g: aco_layering(g, params)
    return algorithms


@dataclass(frozen=True)
class AlgorithmResult:
    """One algorithm applied to one corpus graph."""

    algorithm: str
    graph_name: str
    vertex_count: int
    metrics: LayeringMetrics
    running_time: float

    def value(self, metric: str) -> float:
        """Look up a metric by name (``running_time`` included)."""
        if metric == "running_time":
            return self.running_time
        try:
            return float(getattr(self.metrics, metric))
        except AttributeError:
            raise ValidationError(
                f"unknown metric {metric!r}; choose from {METRIC_NAMES}"
            ) from None


@dataclass
class ComparisonResult:
    """All per-graph results of a comparison run, with group-mean accessors."""

    results: list[AlgorithmResult] = field(default_factory=list)
    nd_width: float = 1.0

    @property
    def algorithms(self) -> list[str]:
        """Algorithm names present, in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.algorithm, None)
        return list(seen)

    @property
    def vertex_counts(self) -> list[int]:
        """Sorted vertex-count groups present in the results."""
        return sorted({r.vertex_count for r in self.results})

    def group_mean(self, algorithm: str, vertex_count: int, metric: str) -> float:
        """Mean of *metric* for *algorithm* over all graphs of one group."""
        values = [
            r.value(metric)
            for r in self.results
            if r.algorithm == algorithm and r.vertex_count == vertex_count
        ]
        if not values:
            raise ValidationError(
                f"no results for algorithm={algorithm!r}, vertex_count={vertex_count}"
            )
        return statistics.fmean(values)

    def series(self, algorithm: str, metric: str) -> dict[int, float]:
        """``vertex_count -> group mean`` series for one algorithm and metric."""
        return {
            vc: self.group_mean(algorithm, vc, metric) for vc in self.vertex_counts
        }

    def all_series(self, metric: str) -> dict[str, dict[int, float]]:
        """Series for every algorithm, keyed by algorithm name."""
        return {alg: self.series(alg, metric) for alg in self.algorithms}


def run_on_graph(
    algorithm_name: str,
    algorithm: LayeringAlgorithm,
    graph: DiGraph,
    *,
    graph_name: str = "",
    vertex_count: int | None = None,
    nd_width: float = 1.0,
) -> AlgorithmResult:
    """Apply one algorithm to one graph, timing it and computing all metrics."""
    start = time.perf_counter()
    layering = algorithm(graph)
    elapsed = time.perf_counter() - start
    metrics = evaluate_layering(graph, layering, nd_width=nd_width)
    return AlgorithmResult(
        algorithm=algorithm_name,
        graph_name=graph_name or f"graph-n{graph.n_vertices}",
        vertex_count=vertex_count if vertex_count is not None else graph.n_vertices,
        metrics=metrics,
        running_time=elapsed,
    )


def run_comparison(
    corpus: Iterable[CorpusGraph] | Sequence[CorpusGraph],
    algorithms: Mapping[str, LayeringAlgorithm] | None = None,
    *,
    nd_width: float = 1.0,
) -> ComparisonResult:
    """Run every algorithm on every corpus graph and collect the results.

    Parameters
    ----------
    corpus: corpus entries (e.g. from :func:`repro.datasets.att_like_corpus`).
    algorithms: name → ``graph -> Layering`` mapping; defaults to the paper's
        five algorithms.
    nd_width: dummy-vertex width used by the metrics.
    """
    algs = dict(algorithms) if algorithms is not None else default_algorithms()
    if not algs:
        raise ValidationError("at least one algorithm is required")
    comparison = ComparisonResult(nd_width=nd_width)
    for entry in corpus:
        for name, algorithm in algs.items():
            comparison.results.append(
                run_on_graph(
                    name,
                    algorithm,
                    entry.graph,
                    graph_name=entry.name,
                    vertex_count=entry.vertex_count,
                    nd_width=nd_width,
                )
            )
    return comparison
