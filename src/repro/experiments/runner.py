"""Run layering algorithms over a corpus and aggregate the paper's metrics.

The evaluation of the paper compares five algorithms — LPL, LPL+PL, MinWidth,
MinWidth+PL and the Ant Colony — on five criteria, averaged per vertex-count
group.  :func:`run_comparison` does exactly that for any algorithm set and any
corpus, streaming the completed cells out of the experiment engine and
aggregating them *incrementally*: group means are maintained as per-group
running sums and counts (O(groups) state), so a full-corpus run never
materialises all ~6400 cell results at once — pass ``keep_results=False`` to
drop the per-cell list entirely.  Failed cells (fault-isolated by the engine)
are skipped by every aggregate and collected on
:attr:`ComparisonResult.failures` so reports can surface them.
:class:`ComparisonResult` is the data source for every figure module and
benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.aco.layering_aco import aco_layering
from repro.aco.params import ACOParams
from repro.datasets.corpus import CorpusGraph
from repro.experiments.engine import (
    CellResult,
    ExperimentEngine,
    MethodSpec,
    WorkUnit,
    default_method_specs,
)
from repro.graph.digraph import DiGraph
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import LayeringMetrics, evaluate_layering
from repro.layering.minwidth import minwidth_layering_sweep
from repro.layering.promote import promote_layering
from repro.utils.exceptions import ValidationError

__all__ = [
    "LayeringAlgorithm",
    "AlgorithmResult",
    "ComparisonResult",
    "default_algorithms",
    "default_method_specs",
    "run_on_graph",
    "run_comparison",
]

LayeringAlgorithm = Callable[[DiGraph], Layering]

#: Metric names understood by :meth:`ComparisonResult.series`.
METRIC_NAMES = (
    "height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "running_time",
    "objective",
)


def default_algorithms(
    *,
    aco_params: ACOParams | None = None,
    include_aco: bool = True,
) -> dict[str, LayeringAlgorithm]:
    """The five algorithms of the paper's evaluation, keyed by display name.

    Parameters
    ----------
    aco_params:
        Parameters for the Ant Colony entry; defaults to the paper's adopted
        configuration (α=1, β=3, 10 tours) with a fixed seed.
    include_aco:
        Set to ``False`` to get only the four baselines (handy for quick
        tests of the harness itself).
    """
    params = aco_params if aco_params is not None else ACOParams(seed=0)
    algorithms: dict[str, LayeringAlgorithm] = {
        "LPL": longest_path_layering,
        "LPL+PL": lambda g: promote_layering(g, longest_path_layering(g)),
        "MinWidth": minwidth_layering_sweep,
        "MinWidth+PL": lambda g: promote_layering(g, minwidth_layering_sweep(g)),
    }
    if include_aco:
        algorithms["AntColony"] = lambda g: aco_layering(g, params)
    return algorithms


@dataclass(frozen=True)
class AlgorithmResult:
    """One algorithm applied to one corpus graph."""

    algorithm: str
    graph_name: str
    vertex_count: int
    metrics: LayeringMetrics
    running_time: float

    def value(self, metric: str) -> float:
        """Look up a metric by name (``running_time`` included)."""
        if metric == "running_time":
            return self.running_time
        try:
            return float(getattr(self.metrics, metric))
        except AttributeError:
            raise ValidationError(
                f"unknown metric {metric!r}; choose from {METRIC_NAMES}"
            ) from None


@dataclass
class ComparisonResult:
    """Aggregated outcome of a comparison run.

    Group means are maintained incrementally (:meth:`add`): per
    ``(algorithm, vertex_count)`` running sums and counts over every metric —
    O(groups) memory however large the corpus.  ``results`` additionally
    keeps the individual per-graph results when the run was built with
    ``keep_results=True`` (the default); streaming full-corpus runs drop it.
    Failed cells never enter the aggregates; they are collected on
    ``failures`` (engine-level fault isolation).

    A ``ComparisonResult`` constructed and maintained by hand (a ``results``
    list, possibly mutated between accessor calls, never :meth:`add`) keeps
    the pre-streaming behaviour: accessors compute live from the list on
    every call.  Once :meth:`add` has been used the accumulators are
    authoritative and direct ``results`` mutation is unsupported.
    """

    results: list[AlgorithmResult] = field(default_factory=list)
    nd_width: float = 1.0
    failures: list[CellResult] = field(default_factory=list)
    cells_ok: int = 0
    _streamed: bool = field(default=False, repr=False, compare=False)
    _alg_order: dict[str, None] = field(default_factory=dict, repr=False, compare=False)
    _counts: dict[tuple[str, int], int] = field(default_factory=dict, repr=False, compare=False)
    _sums: dict[tuple[str, int], dict[str, float]] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # incremental aggregation
    # ------------------------------------------------------------------ #

    def _fold(
        self,
        algorithm: str,
        vertex_count: int,
        metrics: LayeringMetrics,
        running_time: float,
    ) -> None:
        """The one accumulator update shared by :meth:`add` and backfill."""
        self._alg_order.setdefault(algorithm, None)
        group = (algorithm, vertex_count)
        sums = self._sums.setdefault(group, {m: 0.0 for m in METRIC_NAMES})
        self._counts[group] = self._counts.get(group, 0) + 1
        for metric in METRIC_NAMES:
            if metric == "running_time":
                sums[metric] += running_time
            else:
                sums[metric] += float(getattr(metrics, metric))

    def add(self, cell: CellResult, *, keep_results: bool = True) -> None:
        """Fold one completed engine cell into the aggregates.

        Failed cells are counted on :attr:`failures` and excluded from every
        mean; successful cells update the per-group accumulators (and the
        per-cell ``results`` list when *keep_results*).
        """
        if not cell.ok:
            self.failures.append(cell)
            return
        assert cell.metrics is not None
        if not self._streamed:
            # Fold any pre-seeded results list exactly once, then switch the
            # accessors over to the accumulators.
            for r in self.results:
                self._fold(r.algorithm, r.vertex_count, r.metrics, r.running_time)
            self.cells_ok = max(self.cells_ok, len(self.results))
            self._streamed = True
        self.cells_ok += 1
        self._fold(cell.algorithm, cell.vertex_count, cell.metrics, cell.running_time)
        if keep_results:
            self.results.append(
                AlgorithmResult(
                    algorithm=cell.algorithm,
                    graph_name=cell.graph_name,
                    vertex_count=cell.vertex_count,
                    metrics=cell.metrics,
                    running_time=cell.running_time,
                )
            )

    @property
    def cells_failed(self) -> int:
        """Number of cells the engine fault-isolated out of the aggregates."""
        return len(self.failures)

    @property
    def cells_total(self) -> int:
        """All cells seen, successful and failed."""
        return self.cells_ok + self.cells_failed

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def algorithms(self) -> list[str]:
        """Algorithm names present, in first-appearance order."""
        if self._streamed:
            return list(self._alg_order)
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.algorithm, None)
        return list(seen)

    @property
    def vertex_counts(self) -> list[int]:
        """Sorted vertex-count groups present in the results."""
        if self._streamed:
            return sorted({vc for _, vc in self._counts})
        return sorted({r.vertex_count for r in self.results})

    def _group_values(self, algorithm: str, vertex_count: int, metric: str) -> list[float]:
        return [
            r.value(metric)
            for r in self.results
            if r.algorithm == algorithm and r.vertex_count == vertex_count
        ]

    def group_mean(self, algorithm: str, vertex_count: int, metric: str) -> float:
        """Mean of *metric* for *algorithm* over all graphs of one group."""
        if metric not in METRIC_NAMES:
            raise ValidationError(
                f"unknown metric {metric!r}; choose from {METRIC_NAMES}"
            )
        group = (algorithm, vertex_count)
        if self._streamed:
            count = self._counts.get(group, 0)
            if count == 0:
                raise ValidationError(
                    f"no results for algorithm={algorithm!r}, vertex_count={vertex_count}"
                )
            return self._sums[group][metric] / count
        values = self._group_values(algorithm, vertex_count, metric)
        if not values:
            raise ValidationError(
                f"no results for algorithm={algorithm!r}, vertex_count={vertex_count}"
            )
        return sum(values) / len(values)

    def _has_group(self, algorithm: str, vertex_count: int) -> bool:
        if self._streamed:
            return (algorithm, vertex_count) in self._counts
        return any(
            r.algorithm == algorithm and r.vertex_count == vertex_count
            for r in self.results
        )

    def series(self, algorithm: str, metric: str) -> dict[int, float]:
        """``vertex_count -> group mean`` series for one algorithm and metric."""
        return {
            vc: self.group_mean(algorithm, vc, metric)
            for vc in self.vertex_counts
            if self._has_group(algorithm, vc)
        }

    def all_series(self, metric: str) -> dict[str, dict[int, float]]:
        """Series for every algorithm, keyed by algorithm name."""
        return {alg: self.series(alg, metric) for alg in self.algorithms}


def run_on_graph(
    algorithm_name: str,
    algorithm: LayeringAlgorithm,
    graph: DiGraph,
    *,
    graph_name: str = "",
    vertex_count: int | None = None,
    nd_width: float = 1.0,
) -> AlgorithmResult:
    """Apply one algorithm to one graph, timing it and computing all metrics."""
    start = time.perf_counter()
    layering = algorithm(graph)
    elapsed = time.perf_counter() - start
    metrics = evaluate_layering(graph, layering, nd_width=nd_width)
    return AlgorithmResult(
        algorithm=algorithm_name,
        graph_name=graph_name or f"graph-n{graph.n_vertices}",
        vertex_count=vertex_count if vertex_count is not None else graph.n_vertices,
        metrics=metrics,
        running_time=elapsed,
    )


def _coerce_method_specs(
    algorithms: Mapping[str, LayeringAlgorithm | MethodSpec] | None,
) -> dict[str, MethodSpec]:
    """Normalise the *algorithms* argument of :func:`run_comparison` to specs.

    ``None`` means the paper's five algorithms (as executor-portable specs);
    bare callables are wrapped per-name and run in the parent process.
    """
    if algorithms is None:
        return default_method_specs()
    specs: dict[str, MethodSpec] = {}
    for name, method in algorithms.items():
        if isinstance(method, MethodSpec):
            specs[name] = method
        else:
            specs[name] = MethodSpec.from_callable(name, method)
    return specs


def run_comparison(
    corpus: Iterable[CorpusGraph] | Sequence[CorpusGraph],
    algorithms: Mapping[str, LayeringAlgorithm | MethodSpec] | None = None,
    *,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    keep_results: bool = True,
) -> ComparisonResult:
    """Run every algorithm on every corpus graph and collect the results.

    Parameters
    ----------
    corpus: corpus entries (e.g. from :func:`repro.datasets.att_like_corpus`).
    algorithms: name → method mapping; values may be
        :class:`~repro.experiments.engine.MethodSpec` instances (portable to
        process-pool workers and cacheable) or plain ``graph -> Layering``
        callables (always executed in the parent process).  Defaults to the
        paper's five algorithms as specs.
    nd_width: dummy-vertex width used by the metrics.
    engine: the :class:`~repro.experiments.engine.ExperimentEngine` to
        dispatch cells through; defaults to a serial, uncached engine, which
        reproduces the historical in-process behaviour exactly.  Cells are
        consumed through :meth:`~repro.experiments.engine.ExperimentEngine.
        run_iter` and aggregated as they complete; cells the engine
        fault-isolated land on :attr:`ComparisonResult.failures`.
    keep_results: ``True`` (default) keeps one :class:`AlgorithmResult` per
        cell on ``ComparisonResult.results``; ``False`` keeps only the
        per-group aggregates — O(groups) memory for full-corpus runs.
    """
    specs = _coerce_method_specs(algorithms)
    if not specs:
        raise ValidationError("at least one algorithm is required")
    engine = engine if engine is not None else ExperimentEngine()
    units = [
        WorkUnit(
            graph=entry.graph,
            method=spec,
            nd_width=nd_width,
            graph_name=entry.name,
            vertex_count=entry.vertex_count,
            label=name,
        )
        for entry in corpus
        for name, spec in specs.items()
    ]
    comparison = ComparisonResult(nd_width=nd_width)
    for cell in engine.run_iter(units):
        comparison.add(cell, keep_results=keep_results)
    return comparison
