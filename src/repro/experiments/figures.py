"""One function per evaluation figure of the paper (Fig. 4 – Fig. 9).

Each ``figureN`` function runs the relevant algorithm subset over a corpus and
returns a :class:`FigureData` value: a list of panels, each holding the series
(vertex count → group mean) that the corresponding sub-plot of the paper
shows.  The benchmark modules under ``benchmarks/`` call these functions, and
``repro.experiments.reporting.format_figure`` renders them as text tables.

Figure → content map (paper Section VII):

========  ==================================================================
Fig. 4    Width incl./excl. dummies — AntColony vs LPL vs LPL+PL
Fig. 5    Width incl./excl. dummies — AntColony vs MinWidth vs MinWidth+PL
Fig. 6    Height and dummy-vertex count — AntColony vs LPL vs LPL+PL
Fig. 7    Height and dummy-vertex count — AntColony vs MinWidth vs MinWidth+PL
Fig. 8    Edge density and running time — AntColony vs LPL vs LPL+PL
Fig. 9    Edge density and running time — AntColony vs MinWidth vs MinWidth+PL
========  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.aco.params import ACOParams
from repro.datasets.corpus import CorpusGraph, att_like_corpus
from repro.experiments.engine import CellResult, ExperimentEngine, default_method_specs
from repro.experiments.runner import ComparisonResult, run_comparison

__all__ = [
    "FigurePanel",
    "FigureData",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "FIGURES",
]

#: Algorithm subsets used by the two figure families.
LPL_FAMILY = ("LPL", "LPL+PL", "AntColony")
MINWIDTH_FAMILY = ("MinWidth", "MinWidth+PL", "AntColony")


@dataclass(frozen=True)
class FigurePanel:
    """One sub-plot: a metric plus one series per algorithm."""

    metric: str
    ylabel: str
    series: dict[str, dict[int, float]]


@dataclass(frozen=True)
class FigureData:
    """A reproduced figure: identifier, caption and its panels.

    ``failures`` carries the cells the engine fault-isolated out of the
    underlying comparison (with ``cells_total`` for context), so renderers
    can flag a partially failed figure instead of silently plotting thinner
    series.
    """

    figure_id: str
    title: str
    panels: tuple[FigurePanel, ...]
    failures: tuple[CellResult, ...] = field(default=())
    cells_total: int = 0

    def panel(self, metric: str) -> FigurePanel:
        """Look up a panel by metric name."""
        for p in self.panels:
            if p.metric == metric:
                return p
        raise KeyError(f"figure {self.figure_id} has no panel for metric {metric!r}")


def _default_corpus(graphs_per_group: int | None) -> list[CorpusGraph]:
    return att_like_corpus(graphs_per_group=graphs_per_group)


def _comparison(
    corpus: Sequence[CorpusGraph] | None,
    graphs_per_group: int | None,
    algorithm_names: Sequence[str],
    aco_params: ACOParams | None,
    nd_width: float,
    engine: ExperimentEngine | None,
    n_colonies: int,
) -> ComparisonResult:
    entries = list(corpus) if corpus is not None else _default_corpus(graphs_per_group)
    specs = default_method_specs(aco_params=aco_params, n_colonies=n_colonies)
    selected = {name: specs[name] for name in algorithm_names}
    return run_comparison(entries, selected, nd_width=nd_width, engine=engine)


def _two_panel_figure(
    figure_id: str,
    title: str,
    metrics: tuple[tuple[str, str], tuple[str, str]],
    algorithm_names: Sequence[str],
    *,
    corpus: Sequence[CorpusGraph] | None,
    graphs_per_group: int | None,
    aco_params: ACOParams | None,
    nd_width: float,
    engine: ExperimentEngine | None,
    n_colonies: int,
) -> FigureData:
    comparison = _comparison(
        corpus, graphs_per_group, algorithm_names, aco_params, nd_width, engine, n_colonies
    )
    panels = tuple(
        FigurePanel(metric=metric, ylabel=ylabel, series=comparison.all_series(metric))
        for metric, ylabel in metrics
    )
    return FigureData(
        figure_id=figure_id,
        title=title,
        panels=panels,
        failures=tuple(comparison.failures),
        cells_total=comparison.cells_total,
    )


def figure4(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 4: layering width of AntColony vs LPL and LPL+PL (incl. and excl. dummies)."""
    return _two_panel_figure(
        "fig4",
        "Width of Ant Colony layering compared with LPL and LPL with PL",
        (
            ("width_including_dummies", "Width (including dummy vertices)"),
            ("width_excluding_dummies", "Width (excluding dummy vertices)"),
        ),
        LPL_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


def figure5(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 5: layering width of AntColony vs MinWidth and MinWidth+PL."""
    return _two_panel_figure(
        "fig5",
        "Width of Ant Colony layering compared with MinWidth and MinWidth with PL",
        (
            ("width_including_dummies", "Width (including dummy vertices)"),
            ("width_excluding_dummies", "Width (excluding dummy vertices)"),
        ),
        MINWIDTH_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


def figure6(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 6: height and dummy-vertex count of AntColony vs LPL and LPL+PL."""
    return _two_panel_figure(
        "fig6",
        "Height and DVC of Ant Colony layering compared with LPL and LPL with PL",
        (
            ("height", "Height (number of layers)"),
            ("dummy_vertex_count", "Number of dummy vertices"),
        ),
        LPL_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


def figure7(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 7: height and dummy-vertex count of AntColony vs MinWidth and MinWidth+PL."""
    return _two_panel_figure(
        "fig7",
        "Height and DVC of Ant Colony layering compared with MinWidth and MinWidth with PL",
        (
            ("height", "Height (number of layers)"),
            ("dummy_vertex_count", "Number of dummy vertices"),
        ),
        MINWIDTH_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


def figure8(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 8: edge density and running time of AntColony vs LPL and LPL+PL."""
    return _two_panel_figure(
        "fig8",
        "Edge density and running time of Ant Colony layering compared with LPL and LPL with PL",
        (
            ("edge_density", "Edge density"),
            ("running_time", "Running time (seconds)"),
        ),
        LPL_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


def figure9(
    *,
    corpus: Sequence[CorpusGraph] | None = None,
    graphs_per_group: int | None = 4,
    aco_params: ACOParams | None = None,
    nd_width: float = 1.0,
    engine: ExperimentEngine | None = None,
    n_colonies: int = 1,
) -> FigureData:
    """Fig. 9: edge density and running time of AntColony vs MinWidth and MinWidth+PL."""
    return _two_panel_figure(
        "fig9",
        "Edge density and running time of Ant Colony layering compared with MinWidth and MinWidth with PL",
        (
            ("edge_density", "Edge density"),
            ("running_time", "Running time (seconds)"),
        ),
        MINWIDTH_FAMILY,
        corpus=corpus,
        graphs_per_group=graphs_per_group,
        aco_params=aco_params,
        nd_width=nd_width,
        engine=engine,
        n_colonies=n_colonies,
    )


#: Registry of all reproduced figures, keyed by figure id.
FIGURES: dict[str, Callable[..., FigureData]] = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}
