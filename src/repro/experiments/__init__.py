"""Experiment harness: regenerate every figure of the paper's evaluation.

* :mod:`repro.experiments.engine` — the shared parallel experiment engine:
  every comparison/figure/sweep cell is dispatched over a process, thread or
  serial executor, with an optional content-addressed result cache;
* :mod:`repro.experiments.cache` — the on-disk cache backing the engine;
* :mod:`repro.experiments.runner` — run any set of layering algorithms over a
  corpus and aggregate the paper's metrics per vertex-count group;
* :mod:`repro.experiments.figures` — one function per figure (Fig. 4–9),
  returning the plotted series as plain data;
* :mod:`repro.experiments.tuning` — the α/β and ``nd_width`` sweeps of
  Section VIII;
* :mod:`repro.experiments.reporting` — plain-text table rendering used by the
  benchmarks and the examples.
"""

from repro.experiments.cache import CachedCell, CacheStats, PruneResult, ResultCache
from repro.experiments.engine import (
    CellError,
    CellFailure,
    CellResult,
    ExperimentEngine,
    MethodSpec,
    RunInterrupted,
    RunProgress,
    WorkUnit,
    default_method_specs,
)
from repro.experiments.journal import RunJournal
from repro.experiments.figures import (
    FIGURES,
    FigureData,
    FigurePanel,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.runner import (
    AlgorithmResult,
    ComparisonResult,
    default_algorithms,
    run_comparison,
    run_on_graph,
)
from repro.experiments.reporting import format_comparison, format_figure, format_series_table
from repro.experiments.tuning import (
    SweepResult,
    alpha_beta_sweep,
    best_sweep_setting,
    nd_width_sweep,
    parameter_sweep,
)

__all__ = [
    "CachedCell",
    "CacheStats",
    "PruneResult",
    "ResultCache",
    "CellError",
    "CellFailure",
    "CellResult",
    "ExperimentEngine",
    "MethodSpec",
    "RunInterrupted",
    "RunJournal",
    "RunProgress",
    "WorkUnit",
    "default_method_specs",
    "parameter_sweep",
    "AlgorithmResult",
    "ComparisonResult",
    "default_algorithms",
    "run_on_graph",
    "run_comparison",
    "FigureData",
    "FigurePanel",
    "FIGURES",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "SweepResult",
    "alpha_beta_sweep",
    "nd_width_sweep",
    "best_sweep_setting",
    "format_series_table",
    "format_comparison",
    "format_figure",
]
