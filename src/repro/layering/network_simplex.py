"""Minimum-dummy-vertex layering (the problem Gansner's network simplex solves).

The Promote Layering heuristic of the paper is motivated as a cheap
replacement for the network-simplex layering of Gansner et al., which finds a
layering minimising the total edge span ``Σ (layer(u) − layer(v))`` — and
therefore the dummy-vertex count ``Σ (span − 1)`` — subject to every span
being at least one.  This module solves the same optimisation exactly.

Two solvers are provided:

* :func:`minimum_dummy_layering` — formulates the problem as a linear program
  and solves it with :func:`scipy.optimize.linprog` (HiGHS).  The constraint
  matrix is the incidence matrix of the DAG, which is totally unimodular, so
  the LP relaxation always has an integral optimal solution; the result is
  rounded and verified.
* :func:`minimum_dummy_layering_longest_path` — a pure-combinatorial fallback
  (LPL followed by exhaustive promotion/demotion passes) that needs no LP
  solver and is used automatically if SciPy is unavailable.

Either way the result is normalised so layers start at 1.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.layering.longest_path import longest_path_layering
from repro.layering.promote import promote_layering
from repro.utils.exceptions import LayeringError

try:  # pragma: no cover - exercised implicitly; scipy is an optional accelerator
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _HAVE_SCIPY = False

__all__ = [
    "minimum_dummy_layering",
    "minimum_dummy_layering_longest_path",
    "minimum_total_span",
]


def minimum_dummy_layering_longest_path(graph: DiGraph) -> Layering:
    """Combinatorial fallback: LPL followed by exhaustive node promotion.

    Promotion passes monotonically reduce the total edge span and terminate;
    for the sparse graphs this library targets the result is optimal or very
    close to it, but unlike the LP solver no optimality guarantee is made.
    """
    lpl = longest_path_layering(graph)
    return promote_layering(graph, lpl)


def minimum_dummy_layering(graph: DiGraph) -> Layering:
    """Exact minimum-total-edge-span layering (Gansner-equivalent).

    Solves ``min Σ_(u,v) (y_u − y_v)`` subject to ``y_u − y_v >= 1`` for every
    edge and ``y >= 1``.  Because the constraint matrix is a network matrix
    the LP optimum is integral; the solution is rounded to integers and
    validated before being returned.

    Falls back to :func:`minimum_dummy_layering_longest_path` when SciPy is
    not installed.
    """
    require_nonempty(graph)
    require_dag(graph)
    if graph.n_edges == 0:
        return Layering({v: 1 for v in graph.vertices()})
    if not _HAVE_SCIPY:  # pragma: no cover
        return minimum_dummy_layering_longest_path(graph)

    vertices = list(graph.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    edges = list(graph.edges())
    m = len(edges)

    # Objective: sum over edges of (y_u - y_v)  ==  c . y with
    # c[i] = (#times i is an edge source) - (#times i is an edge target).
    c = np.zeros(n)
    for u, v in edges:
        c[index[u]] += 1.0
        c[index[v]] -= 1.0

    # Constraints:  y_v - y_u <= -1   for every edge (u, v).
    a_ub = np.zeros((m, n))
    for k, (u, v) in enumerate(edges):
        a_ub[k, index[v]] = 1.0
        a_ub[k, index[u]] = -1.0
    b_ub = -np.ones(m)
    bounds = [(1.0, None)] * n

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:  # pragma: no cover - defensive; the LP is always feasible
        raise LayeringError(f"minimum-dummy LP failed: {result.message}")

    assignment: dict[Vertex, int] = {
        v: int(round(result.x[index[v]])) for v in vertices
    }
    layering = Layering(assignment).normalized()
    layering.validate(graph)
    return layering


def minimum_total_span(graph: DiGraph) -> int:
    """The minimum achievable total edge span of *graph* (a lower bound on |E| + DVC)."""
    layering = minimum_dummy_layering(graph)
    return sum(layering.edge_span(u, v) for u, v in graph.edges())
