"""Promote Layering (PL) — Nikolov & Tarassov's node-promotion heuristic.

PL post-processes an existing layering (typically LPL or MinWidth) to reduce
the number of dummy vertices.  *Promoting* a vertex moves it one layer up;
if a predecessor sits immediately above, it must be promoted too, and so on
transitively.  A promotion is accepted only when the net change in dummy
count — ``Σ (out-degree − in-degree)`` over the promoted set — is negative.
The heuristic repeats full passes over the vertices until no accepted
promotion remains.

PL is the paper's stand-in for the network-simplex layering of Gansner et al.:
"a simple and easy to implement layering method for decreasing the number of
dummy vertices in a DAG layered by some list scheduling algorithm".
"""

from __future__ import annotations

import heapq

from typing import Mapping

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["promotion_set", "promotion_dummy_diff", "promotion_round", "promote_layering"]


def promotion_set(graph: DiGraph, assignment: Mapping[Vertex, int], v: Vertex) -> set[Vertex]:
    """The set of vertices that must move up together when *v* is promoted.

    Starting from ``{v}``, any predecessor sitting exactly one layer above a
    member of the set must be promoted as well (otherwise the edge between
    them would become horizontal), and so on transitively.
    """
    promoted = {v}
    stack = [v]
    while stack:
        x = stack.pop()
        lx = assignment[x]
        for u in graph.predecessors(x):
            if u not in promoted and assignment[u] == lx + 1:
                promoted.add(u)
                stack.append(u)
    return promoted


def promotion_dummy_diff(graph: DiGraph, promoted: set[Vertex]) -> int:
    """Net change in dummy-vertex count if every vertex in *promoted* moves up one layer.

    Each promoted vertex lengthens its outgoing edges to non-promoted targets
    by one and shortens its incoming edges from non-promoted sources by one;
    edges with both endpoints promoted are unchanged.  The total simplifies to
    ``Σ (out-degree − in-degree)`` over the promoted set because the
    intra-set edge contributions cancel.
    """
    return sum(graph.out_degree(x) - graph.in_degree(x) for x in promoted)


def promotion_round(graph: DiGraph, assignment: dict[Vertex, int]) -> int:
    """One pass of the promotion heuristic, mutating *assignment* in place.

    Every vertex with at least one incoming edge is considered in graph
    insertion order; promotions with a strictly negative dummy diff are
    applied immediately.  Returns the number of accepted promotions.
    """
    accepted = 0
    for v in graph.vertices():
        if graph.in_degree(v) == 0:
            continue
        promoted = promotion_set(graph, assignment, v)
        if promotion_dummy_diff(graph, promoted) < 0:
            for x in promoted:
                assignment[x] += 1
            accepted += 1
    return accepted


def promote_layering(
    graph: DiGraph,
    layering: Layering,
    *,
    max_rounds: int | None = None,
) -> Layering:
    """Apply the Promote Layering heuristic to an existing layering.

    Parameters
    ----------
    graph: the DAG.
    layering: a valid layering of *graph* (e.g. the LPL or MinWidth result).
    max_rounds: optional safety cap on the number of full passes; by default
        the heuristic runs until a pass accepts no promotion.

    Returns the promoted layering, normalised so layers start at 1.  The
    dummy-vertex count of the result is never larger than that of the input.
    """
    require_nonempty(graph)
    require_dag(graph)
    layering.validate(graph)
    if max_rounds is not None and max_rounds < 0:
        raise ValidationError(f"max_rounds must be >= 0, got {max_rounds}")

    vertices = list(graph.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    preds = [[index[u] for u in graph.predecessors(v)] for v in vertices]
    diff = [graph.out_degree(v) - graph.in_degree(v) for v in vertices]
    asg = [layering.layer_of(v) for v in vertices]

    # Worklist refinement of the reference round loop.  A vertex's promotion
    # decision reads only the layers of its promotion set and of that set's
    # predecessors (the one-above equality tests); while none of those
    # values move, re-evaluating the vertex would reject identically.  Each
    # rejection registers the vertex as a *reader* of everything it read;
    # each accepted promotion wakes exactly the registered readers of the
    # moved vertices (plus the movers themselves).  A woken vertex ahead of
    # the round's ascending cursor is re-evaluated in the *same* round —
    # exactly when the reference's full pass would reach it — and one behind
    # the cursor waits for the next round.  The accept sequence, the
    # per-round accept counts and hence the final layering are identical to
    # full passes; the all-reject convergence tail costs nothing.
    readers: dict[int, set[int]] = {}
    current = {v for v in range(n) if preds[v]}
    rounds = 0
    while current:
        if max_rounds is not None and rounds >= max_rounds:
            break
        accepted = 0
        nxt: set[int] = set()
        heap = sorted(current)  # a sorted list already satisfies the heap invariant
        in_heap = set(heap)

        def wake(x: int, cursor: int) -> None:
            if x > cursor:
                if x not in in_heap:
                    in_heap.add(x)
                    heapq.heappush(heap, x)
            else:
                nxt.add(x)

        while heap:
            v = heapq.heappop(heap)
            in_heap.discard(v)
            # Common case first: no predecessor sits exactly one layer
            # above, so the promotion set is {v} alone — no set/stack churn.
            lv_above = asg[v] + 1
            cascade = False
            for u in preds[v]:
                if asg[u] == lv_above:
                    cascade = True
                    break
            if not cascade:
                members: tuple[int, ...] | set[int] = (v,)
                total = diff[v]
            else:
                promoted = {v}
                stack = [v]
                total = diff[v]
                while stack:
                    x = stack.pop()
                    lx_above = asg[x] + 1
                    for u in preds[x]:
                        if u not in promoted and asg[u] == lx_above:
                            promoted.add(u)
                            stack.append(u)
                            total += diff[u]
                members = promoted
            if total < 0:
                for x in members:
                    asg[x] += 1
                accepted += 1
                for x in members:
                    woken = readers.pop(x, None)
                    if woken:
                        for r in woken:
                            wake(r, v)
                    if preds[x]:
                        wake(x, v)
            else:
                for x in members:
                    readers.setdefault(x, set()).add(v)
                    for u in preds[x]:
                        readers.setdefault(u, set()).add(v)
        if accepted == 0:
            break
        rounds += 1
        current = nxt
    return Layering({vertices[i]: asg[i] for i in range(n)}).normalized()
