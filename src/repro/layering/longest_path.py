"""Longest-Path Layering (Algorithm 1 of the paper).

LPL places every sink on layer 1 and every other vertex ``v`` on layer
``p + 1`` where ``p`` is the length (in edges) of the longest path from ``v``
to a sink.  It runs in linear time, uses the minimum possible number of
layers, and is the seed layering that the ACO algorithm stretches before the
ants start working.  Its weakness — layerings that are far wider than
necessary, especially once dummy vertices are counted — is exactly what the
paper's evaluation quantifies.
"""

from __future__ import annotations

from repro.graph.acyclicity import longest_path_lengths
from repro.graph.digraph import DiGraph
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering

__all__ = ["longest_path_layering", "minimum_height"]


def longest_path_layering(graph: DiGraph) -> Layering:
    """Layer *graph* with the Longest-Path Layering algorithm.

    Returns a valid layering whose height equals the number of vertices on
    the longest directed path in the graph — the minimum height achievable by
    any layering.

    Raises
    ------
    CycleError
        If the graph contains a cycle.
    GraphError
        If the graph is empty.
    """
    require_nonempty(graph)
    # No separate require_dag: the topological sort inside
    # longest_path_lengths raises CycleError itself, and paying for two full
    # sorts per call was measurable at corpus scale.
    dist = longest_path_lengths(graph, from_sinks=True)
    return Layering({v: dist[v] + 1 for v in graph.vertices()})


def minimum_height(graph: DiGraph) -> int:
    """Minimum number of layers any valid layering of *graph* must use.

    Equal to the number of vertices on the longest directed path, i.e. the
    height of the LPL layering.
    """
    require_nonempty(graph)
    require_dag(graph)
    dist = longest_path_lengths(graph, from_sinks=True)
    return max(dist.values()) + 1
