"""Stretching a layering to enlarge the ants' search space (paper, Section V-A).

The ACO algorithm first layers the graph with LPL, then inserts new empty
layers until the total number of layers equals ``|V|``.  This guarantees the
search space contains every layering — including the minimum-width ones —
because no layering of an ``n``-vertex DAG ever needs more than ``n`` layers.

Two placement strategies are provided:

* :func:`stretch_between` (the paper's choice, Fig. 2) distributes the new
  layers evenly into the gaps *between* consecutive LPL layers, so the layer
  span of every vertex grows roughly uniformly;
* :func:`stretch_above_below` (the rejected alternative, Fig. 1) piles the new
  layers above and/or below the existing layering, which only enlarges the
  span of sources and sinks.  It is kept for the ablation benchmark that
  quantifies how much the placement strategy matters.
"""

from __future__ import annotations

from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["stretch_between", "stretch_above_below"]


def _validate_target(layering: Layering, target_layers: int) -> int:
    height = layering.height
    if target_layers < height:
        raise ValidationError(
            f"cannot stretch a layering of height {height} down to {target_layers} layers"
        )
    return height


def stretch_between(layering: Layering, target_layers: int) -> tuple[Layering, int]:
    """Insert empty layers between existing layers until *target_layers* layers exist.

    The ``target_layers - height`` new layers are divided as evenly as
    possible among the ``height - 1`` inter-layer gaps, with the lower gaps
    receiving the remainder (one extra layer each), and the existing layers
    are re-indexed accordingly — exactly the re-indexing illustrated by Fig. 2
    of the paper.  When the input has a single layer the new layers can only
    go above it.

    Returns the stretched layering and the total layer count (which is always
    *target_layers*).
    """
    height = _validate_target(layering, target_layers)
    n_new = target_layers - height
    if n_new == 0:
        return layering.copy(), target_layers
    if height == 1:
        # No gaps exist; the extra layers sit above the single occupied layer.
        return layering.copy(), target_layers

    n_gaps = height - 1
    base, extra = divmod(n_new, n_gaps)
    # gap i (between old layers i and i+1, 1-based) receives `base` new layers,
    # plus one more for the first `extra` gaps.
    inserted_below: dict[int, int] = {1: 0}
    cumulative = 0
    for old_layer in range(2, height + 1):
        gap_index = old_layer - 1
        cumulative += base + (1 if gap_index <= extra else 0)
        inserted_below[old_layer] = cumulative

    stretched = {
        v: layer + inserted_below[layer] for v, layer in layering.items()
    }
    return Layering(stretched), target_layers


def stretch_above_below(
    layering: Layering,
    target_layers: int,
    *,
    mode: str = "split",
) -> tuple[Layering, int]:
    """Add the new layers above and/or below the existing layering (Fig. 1 strategy).

    Parameters
    ----------
    layering: the layering to stretch.
    target_layers: total number of layers afterwards.
    mode: ``"above"`` (all new layers above the top), ``"below"`` (all below
        layer 1, shifting everything up), or ``"split"`` (default; half
        below, half above).

    Returns the stretched layering and the total layer count.
    """
    height = _validate_target(layering, target_layers)
    n_new = target_layers - height
    if mode not in {"above", "below", "split"}:
        raise ValidationError(f"mode must be 'above', 'below' or 'split', got {mode!r}")
    if n_new == 0:
        return layering.copy(), target_layers
    if mode == "above":
        below = 0
    elif mode == "below":
        below = n_new
    else:
        below = n_new // 2
    return layering.shifted(below), target_layers
