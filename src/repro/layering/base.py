"""The :class:`Layering` value type.

A layering assigns every vertex of a DAG an integer layer ``>= 1``.  Layers
are numbered **bottom-up**, exactly as in the paper's Preliminaries: for every
edge ``(u, v)`` the source must satisfy ``layer(u) > layer(v)`` (all edges
point downwards when layer 1 is drawn at the bottom).

The class is a thin immutable-ish wrapper over a ``dict`` that adds the
operations every algorithm needs: height, per-layer vertex lists,
normalisation (dropping empty layers), validity checking against a graph, and
edge spans.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.graph.digraph import DiGraph, Vertex
from repro.utils.exceptions import LayeringError

__all__ = ["Layering"]


class Layering:
    """An assignment of vertices to integer layers (1-based, bottom-up).

    Parameters
    ----------
    assignment:
        Mapping from vertex to layer number.  Layer numbers must be integers
        ``>= 1``; they need not be contiguous (use :meth:`normalized` to
        compact them).

    Examples
    --------
    >>> lay = Layering({"a": 2, "b": 1})
    >>> lay.height
    2
    >>> lay.vertices_on(1)
    ['b']
    """

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Mapping[Vertex, int]) -> None:
        cleaned: dict[Vertex, int] = {}
        for v, layer in assignment.items():
            layer_int = int(layer)
            if layer_int != layer or layer_int < 1:
                raise LayeringError(
                    f"layer of vertex {v!r} must be an integer >= 1, got {layer!r}"
                )
            cleaned[v] = layer_int
        self._assignment = cleaned

    # ------------------------------------------------------------------ #
    # basic access
    # ------------------------------------------------------------------ #

    def layer_of(self, v: Vertex) -> int:
        """Layer number of vertex *v*."""
        try:
            return self._assignment[v]
        except KeyError:
            raise LayeringError(f"vertex {v!r} has no layer assignment") from None

    def __getitem__(self, v: Vertex) -> int:
        return self.layer_of(v)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._assignment)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Layering):
            return self._assignment == other._assignment
        if isinstance(other, Mapping):
            return self._assignment == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Layering(n_vertices={len(self)}, height={self.height})"

    def items(self) -> Iterator[tuple[Vertex, int]]:
        """Iterate over ``(vertex, layer)`` pairs."""
        return iter(self._assignment.items())

    def to_dict(self) -> dict[Vertex, int]:
        """Return a plain mutable copy of the assignment."""
        return dict(self._assignment)

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #

    @property
    def height(self) -> int:
        """Number of layers used: the highest assigned layer number.

        For a normalised layering this equals the number of non-empty layers,
        which is the paper's definition of layering height.
        """
        if not self._assignment:
            return 0
        return max(self._assignment.values())

    @property
    def min_layer(self) -> int:
        """Lowest assigned layer number (1 for a normalised layering)."""
        if not self._assignment:
            return 0
        return min(self._assignment.values())

    def used_layers(self) -> list[int]:
        """Sorted list of distinct layer numbers that hold at least one vertex."""
        return sorted(set(self._assignment.values()))

    def layers(self) -> dict[int, list[Vertex]]:
        """Mapping ``layer -> [vertices]`` covering layers ``1..height`` (possibly empty lists)."""
        out: dict[int, list[Vertex]] = {i: [] for i in range(1, self.height + 1)}
        for v, layer in self._assignment.items():
            out[layer].append(v)
        return out

    def vertices_on(self, layer: int) -> list[Vertex]:
        """Vertices assigned to the given layer (in insertion order)."""
        return [v for v, lay in self._assignment.items() if lay == layer]

    def edge_span(self, u: Vertex, v: Vertex) -> int:
        """Span of the edge ``(u, v)``: ``layer(u) - layer(v)`` (paper, Section II)."""
        return self.layer_of(u) - self.layer_of(v)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #

    def copy(self) -> "Layering":
        """Independent copy."""
        return Layering(self._assignment)

    def normalized(self) -> "Layering":
        """Compact the layering: drop empty layers and renumber from 1 upward.

        Relative vertical order of vertices is preserved.  This is the
        "remove empty layers in the middle" post-processing step the paper
        applies after the ant colony finishes.
        """
        used = self.used_layers()
        rank = {layer: i + 1 for i, layer in enumerate(used)}
        return Layering({v: rank[layer] for v, layer in self._assignment.items()})

    def shifted(self, delta: int) -> "Layering":
        """Return a copy with every layer number increased by *delta* (may not go below 1)."""
        if self._assignment and self.min_layer + delta < 1:
            raise LayeringError(
                f"shift by {delta} would push layer {self.min_layer} below 1"
            )
        return Layering({v: layer + delta for v, layer in self._assignment.items()})

    # ------------------------------------------------------------------ #
    # validity
    # ------------------------------------------------------------------ #

    def validate(self, graph: DiGraph) -> None:
        """Raise :class:`LayeringError` unless this is a valid layering of *graph*.

        Valid means: every graph vertex has a layer, no extra vertices are
        assigned, and every edge points strictly downwards
        (``layer(u) > layer(v)`` for each edge ``(u, v)``).
        """
        graph_vertices = set(graph.vertices())
        assigned = set(self._assignment)
        missing = graph_vertices - assigned
        if missing:
            raise LayeringError(f"vertices without a layer: {sorted(map(repr, missing))}")
        extra = assigned - graph_vertices
        if extra:
            raise LayeringError(f"layered vertices not in the graph: {sorted(map(repr, extra))}")
        for u, v in graph.edges():
            if self._assignment[u] <= self._assignment[v]:
                raise LayeringError(
                    f"edge ({u!r}, {v!r}) does not point downwards: "
                    f"layer({u!r})={self._assignment[u]} <= layer({v!r})={self._assignment[v]}"
                )

    def is_valid(self, graph: DiGraph) -> bool:
        """``True`` when :meth:`validate` would not raise."""
        try:
            self.validate(graph)
            return True
        except LayeringError:
            return False

    def is_proper(self, graph: DiGraph) -> bool:
        """``True`` when every edge has span exactly one (no dummy vertices needed)."""
        return self.is_valid(graph) and all(
            self.edge_span(u, v) == 1 for u, v in graph.edges()
        )
