"""Layering-quality metrics used throughout the paper's evaluation.

All five criteria of Section VII are implemented here:

* **height** — number of layers used;
* **width including dummy vertices** — the maximum, over layers, of the sum of
  real-vertex widths on the layer plus ``nd_width`` for every edge crossing it;
* **width excluding dummy vertices** — the classical width that ignores the
  crossing edges;
* **dummy-vertex count (DVC)** — one dummy per layer crossed by every edge,
  i.e. ``Σ (span(e) - 1)``;
* **edge density** — the maximum, over adjacent layer pairs, of the number of
  edges crossing the gap between them.

:func:`evaluate_layering` bundles all of them (plus the ACO objective
``1 / (height + width)``) into a :class:`LayeringMetrics` record so the
experiment harness can treat every algorithm uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = [
    "LayeringMetrics",
    "layering_height",
    "layer_widths",
    "real_layer_widths",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "edge_density_normalized",
    "total_edge_span",
    "aco_objective",
    "evaluate_layering",
]


def _check_nd_width(nd_width: float) -> None:
    if nd_width < 0:
        raise ValidationError(f"dummy vertex width must be >= 0, got {nd_width}")


def _edge_layers(graph: DiGraph, layering: Layering) -> tuple[np.ndarray, np.ndarray]:
    """Tail and head layers of every edge as flat ``int64`` arrays."""
    tails = np.empty(graph.n_edges, dtype=np.int64)
    heads = np.empty(graph.n_edges, dtype=np.int64)
    for e, (u, v) in enumerate(graph.edges()):
        tails[e] = layering.layer_of(u)
        heads[e] = layering.layer_of(v)
    return tails, heads


def _interval_counts(
    starts: np.ndarray, stops: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """How many half-open intervals ``[starts[e], stops[e])`` cover each of
    ``lo..hi`` — the classic difference-array + prefix-sum replacement for a
    per-interval inner loop (exact integer arithmetic).

    Returns an array indexed ``0..hi - lo`` (position ``i`` is layer
    ``lo + i``); intervals are clipped to the ``[lo, hi + 1)`` window.
    """
    size = hi - lo + 2
    delta = np.zeros(size, dtype=np.int64)
    np.add.at(delta, np.clip(starts - lo, 0, size - 1), 1)
    np.add.at(delta, np.clip(stops - lo, 0, size - 1), -1)
    return np.cumsum(delta[:-1])


def layering_height(layering: Layering) -> int:
    """Number of layers used by the layering (counting only non-empty layers)."""
    return len(layering.used_layers())


def real_layer_widths(graph: DiGraph, layering: Layering) -> dict[int, float]:
    """Per-layer sum of real-vertex widths (dummy vertices ignored)."""
    widths: dict[int, float] = {}
    for v in graph.vertices():
        layer = layering.layer_of(v)
        widths[layer] = widths.get(layer, 0.0) + graph.vertex_width(v)
    return widths


def layer_widths(
    graph: DiGraph, layering: Layering, *, nd_width: float = 1.0
) -> dict[int, float]:
    """Per-layer width *including* the dummy vertices induced by long edges.

    A dummy vertex of width *nd_width* sits on layer ``l`` for every edge
    ``(u, v)`` with ``layer(u) > l > layer(v)``.  The result covers every
    layer between the lowest and highest used layer (a layer consisting only
    of dummies still has a width).
    """
    _check_nd_width(nd_width)
    if len(layering) == 0:
        return {}
    lo, hi = layering.min_layer, layering.height
    widths = {layer: 0.0 for layer in range(lo, hi + 1)}
    for v in graph.vertices():
        widths[layering.layer_of(v)] += graph.vertex_width(v)
    if nd_width > 0 and graph.n_edges:
        tails, heads = _edge_layers(graph, layering)
        # One dummy per edge on every layer strictly between its endpoints.
        dummies = _interval_counts(heads + 1, tails, lo, hi)
        for i in np.flatnonzero(dummies):
            widths[lo + int(i)] += nd_width * int(dummies[i])
    return widths


def width_including_dummies(
    graph: DiGraph, layering: Layering, *, nd_width: float = 1.0
) -> float:
    """Maximum layer width with dummy vertices counted (paper's primary width metric)."""
    widths = layer_widths(graph, layering, nd_width=nd_width)
    return max(widths.values()) if widths else 0.0


def width_excluding_dummies(graph: DiGraph, layering: Layering) -> float:
    """Maximum layer width counting only real vertices (the classical definition)."""
    widths = real_layer_widths(graph, layering)
    return max(widths.values()) if widths else 0.0


def dummy_vertex_count(graph: DiGraph, layering: Layering) -> int:
    """Total number of dummy vertices a proper layering would need: ``Σ (span - 1)``."""
    if graph.n_edges == 0:
        return 0
    tails, heads = _edge_layers(graph, layering)
    return int((tails - heads).sum()) - graph.n_edges


def total_edge_span(graph: DiGraph, layering: Layering) -> int:
    """Sum of edge spans (the quantity minimised by the network-simplex layering)."""
    if graph.n_edges == 0:
        return 0
    tails, heads = _edge_layers(graph, layering)
    return int((tails - heads).sum())


def edge_density(graph: DiGraph, layering: Layering) -> int:
    """Maximum number of edges crossing the gap between two adjacent layers.

    Following the paper: the edge density between horizontal levels ``i`` and
    ``i+1`` is the number of edges ``(u, v)`` with ``layer(u) >= i+1`` and
    ``layer(v) <= i``; the edge density of the layering is the maximum over
    ``i``.  An edge of span 1 therefore counts towards exactly one gap.
    """
    if len(layering) == 0 or graph.n_edges == 0:
        return 0
    lo, hi = layering.min_layer, layering.height
    if hi == lo:
        return 0
    # An edge contributes to every gap i between head and tail (layers
    # head..tail-1); count gap coverage with one difference-array pass.
    tails, heads = _edge_layers(graph, layering)
    crossing = _interval_counts(heads, tails, lo, hi - 1)
    return int(crossing.max())


def edge_density_normalized(graph: DiGraph, layering: Layering) -> float:
    """Edge density divided by the vertex count.

    The paper's edge-density plots (Figures 8 and 9) use a 0–2 scale rather
    than a raw edge count, which is consistent with a per-vertex
    normalisation; this helper provides that view so reproduced numbers can
    be compared on the paper's scale.  The raw count remains available via
    :func:`edge_density`.
    """
    if graph.n_vertices == 0:
        return 0.0
    return edge_density(graph, layering) / graph.n_vertices


def aco_objective(
    graph: DiGraph, layering: Layering, *, nd_width: float = 1.0
) -> float:
    """The objective maximised by the ants: ``1 / (height + width_incl_dummies)``."""
    h = layering_height(layering)
    w = width_including_dummies(graph, layering, nd_width=nd_width)
    denom = h + w
    return 1.0 / denom if denom > 0 else 0.0


@dataclass(frozen=True)
class LayeringMetrics:
    """All evaluation criteria of the paper for one (graph, layering) pair."""

    n_vertices: int
    n_edges: int
    height: int
    width_including_dummies: float
    width_excluding_dummies: float
    dummy_vertex_count: int
    edge_density: int
    objective: float
    nd_width: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by the reporting code."""
        return {
            "n_vertices": self.n_vertices,
            "n_edges": self.n_edges,
            "height": self.height,
            "width_including_dummies": self.width_including_dummies,
            "width_excluding_dummies": self.width_excluding_dummies,
            "dummy_vertex_count": self.dummy_vertex_count,
            "edge_density": self.edge_density,
            "objective": self.objective,
            "nd_width": self.nd_width,
        }


def evaluate_layering(
    graph: DiGraph,
    layering: Layering,
    *,
    nd_width: float = 1.0,
    validate: bool = True,
) -> LayeringMetrics:
    """Compute every paper metric for *layering* on *graph*.

    Parameters
    ----------
    graph: the layered DAG.
    layering: a valid layering of *graph*.
    nd_width: the width attributed to each dummy vertex (paper Section VIII
        tunes this; 1.0 is the paper's default in the experiments).
    validate: when ``True`` (default) the layering is checked for validity
        first, so metric values are never silently computed on a broken
        layering.
    """
    _check_nd_width(nd_width)
    # Single-pass fast path: the historical implementation walked the edge
    # dictionaries once per metric (plus once more for validation) — at
    # full-corpus scale those five passes of per-edge dict lookups dominated
    # the cost of evaluating tiny graphs.  One vertex pass and one edge pass
    # feed every metric below with the exact arithmetic (and the same
    # per-layer float accumulation order) of the per-metric helpers.
    assignment = layering._assignment
    n_vertices = graph.n_vertices
    n_edges = graph.n_edges
    if validate and len(assignment) != n_vertices:
        layering.validate(graph)  # canonical missing/extra-vertex error
    try:
        layers = np.fromiter(
            (assignment[v] for v in graph.vertices()), dtype=np.int64, count=n_vertices
        )
    except KeyError:
        layering.validate(graph)  # canonical missing-vertex error
        raise  # pragma: no cover - validate always raises first
    if n_vertices == 0:
        return LayeringMetrics(
            n_vertices=0,
            n_edges=n_edges,
            height=0,
            width_including_dummies=0.0,
            width_excluding_dummies=0.0,
            dummy_vertex_count=0,
            edge_density=0,
            objective=0.0,
            nd_width=nd_width,
        )
    widths = np.fromiter(
        (graph.vertex_width(v) for v in graph.vertices()),
        dtype=np.float64,
        count=n_vertices,
    )
    if n_edges:
        tails = np.empty(n_edges, dtype=np.int64)
        heads = np.empty(n_edges, dtype=np.int64)
        for e, (u, v) in enumerate(graph.edges()):
            tails[e] = assignment[u]
            heads[e] = assignment[v]
        if validate and not (tails > heads).all():
            layering.validate(graph)  # canonical upward-edge error
    else:
        tails = heads = np.empty(0, dtype=np.int64)

    lo = int(layers.min())
    hi = int(layers.max())
    shifted = layers - lo
    occupancy = np.bincount(shifted, minlength=hi - lo + 1)
    height = int(np.count_nonzero(occupancy))
    real = np.bincount(shifted, weights=widths, minlength=hi - lo + 1)
    w_excl = float(real.max())
    totals = real
    if nd_width > 0 and n_edges:
        dummies = _interval_counts(heads + 1, tails, lo, hi)
        totals = real + nd_width * dummies
    w_incl = float(totals.max())
    dvc = int((tails - heads).sum()) - n_edges if n_edges else 0
    if n_edges == 0 or hi == lo:
        density = 0
    else:
        density = int(_interval_counts(heads, tails, lo, hi - 1).max())
    return LayeringMetrics(
        n_vertices=n_vertices,
        n_edges=n_edges,
        height=height,
        width_including_dummies=w_incl,
        width_excluding_dummies=w_excl,
        dummy_vertex_count=dvc,
        edge_density=density,
        objective=1.0 / (height + w_incl) if (height + w_incl) > 0 else 0.0,
        nd_width=nd_width,
    )
