"""Coffman–Graham layering: minimum-ish height subject to a bound on layer size.

The Coffman–Graham algorithm (reference [2] of the paper) layers a DAG so
that no layer contains more than ``width_bound`` *real* vertices, using at
most ``(2 - 2/width_bound)`` times the minimum possible number of layers.  It
ignores dummy vertices entirely, which makes it a useful extra baseline when
studying how much of the width problem is caused by dummies.

The implementation follows the classical two-phase description:

1. **Labelling.**  Vertices are labelled ``1..n`` so that a vertex whose set
   of successor labels is lexicographically smaller receives a smaller label
   (successors here because our layers are numbered bottom-up and edges point
   downwards, mirroring the usual presentation on predecessors).
2. **Scheduling.**  Vertices are placed into layers bottom-up; at each step
   the unplaced vertex with the largest label whose successors are all in
   strictly lower layers is placed into the current layer, and a new layer is
   opened when the current one reaches the bound or no eligible vertex exists.

The algorithm is exact for ``width_bound`` when the DAG is reduced (no
transitive edges); for general DAGs it remains a 2-approximation.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["coffman_graham_layering", "coffman_graham_labels"]


def coffman_graham_labels(graph: DiGraph) -> dict[Vertex, int]:
    """Phase 1: assign the Coffman–Graham lexicographic labels ``1..n``.

    A vertex becomes eligible for the next label once all of its successors
    are labelled; among eligible vertices the one whose (decreasingly sorted)
    successor-label sequence is lexicographically smallest is labelled next.
    """
    require_nonempty(graph)
    require_dag(graph)
    labels: dict[Vertex, int] = {}
    unlabelled = set(graph.vertices())
    n = graph.n_vertices

    def successor_key(v: Vertex) -> list[int]:
        return sorted((labels[w] for w in graph.successors(v)), reverse=True)

    for next_label in range(1, n + 1):
        eligible = [
            v for v in graph.vertices()
            if v in unlabelled and all(w in labels for w in graph.successors(v))
        ]
        # Lexicographically smallest decreasing successor-label sequence wins;
        # insertion order breaks ties deterministically.
        chosen = min(eligible, key=successor_key)
        labels[chosen] = next_label
        unlabelled.discard(chosen)
    return labels


def coffman_graham_layering(graph: DiGraph, width_bound: int) -> Layering:
    """Layer *graph* with at most *width_bound* real vertices per layer.

    Parameters
    ----------
    graph: the DAG to layer.
    width_bound: maximum number of (real) vertices allowed on one layer;
        must be at least 1.

    Returns a valid layering; the bound applies to real vertices only (dummy
    vertices are not considered by this algorithm).
    """
    if width_bound < 1:
        raise ValidationError(f"width_bound must be >= 1, got {width_bound}")
    labels = coffman_graham_labels(graph)

    assignment: dict[Vertex, int] = {}
    placed: set[Vertex] = set()
    below: set[Vertex] = set()  # vertices on layers strictly below the current one
    current_layer = 1
    current_count = 0
    n = graph.n_vertices

    while len(placed) < n:
        eligible = [
            v for v in graph.vertices()
            if v not in placed and all(w in below for w in graph.successors(v))
        ]
        if eligible and current_count < width_bound:
            chosen = max(eligible, key=lambda v: labels[v])
            assignment[chosen] = current_layer
            placed.add(chosen)
            current_count += 1
        else:
            current_layer += 1
            below |= placed
            current_count = 0

    return Layering(assignment).normalized()
