"""Layering algorithms and layering-quality metrics.

A *layering* of a DAG ``G = (V, E)`` is a partition of ``V`` into layers
``L1 .. Lh`` such that for every edge ``(u, v)`` the source sits on a strictly
higher layer than the target (paper, Section II).  This package contains:

* the :class:`~repro.layering.base.Layering` value type plus validity checks;
* the quality metrics the paper evaluates (width with and without dummy
  vertices, height, dummy-vertex count, edge density) in
  :mod:`repro.layering.metrics`;
* dummy-vertex insertion (proper layering) in :mod:`repro.layering.dummy`;
* the layer-span machinery and the LPL-stretching step that the ACO algorithm
  builds on (:mod:`repro.layering.span`, :mod:`repro.layering.stretch`);
* the four baseline algorithms of the paper — Longest-Path Layering, MinWidth,
  and both combined with Promote Layering — plus two extra baselines
  referenced by the paper (Coffman–Graham and a network-simplex-equivalent
  exact minimum-dummy layering).
"""

from repro.layering.base import Layering
from repro.layering.coffman_graham import coffman_graham_layering
from repro.layering.dummy import DummyVertex, make_proper
from repro.layering.longest_path import longest_path_layering
from repro.layering.metrics import (
    LayeringMetrics,
    dummy_vertex_count,
    edge_density,
    edge_density_normalized,
    evaluate_layering,
    layer_widths,
    layering_height,
    width_excluding_dummies,
    width_including_dummies,
)
from repro.layering.minwidth import minwidth_layering, minwidth_layering_sweep
from repro.layering.network_simplex import minimum_dummy_layering
from repro.layering.promote import promote_layering, promotion_round
from repro.layering.span import all_layer_spans, layer_span
from repro.layering.stretch import stretch_above_below, stretch_between

__all__ = [
    "Layering",
    "DummyVertex",
    "make_proper",
    # metrics
    "LayeringMetrics",
    "evaluate_layering",
    "layer_widths",
    "layering_height",
    "width_including_dummies",
    "width_excluding_dummies",
    "dummy_vertex_count",
    "edge_density",
    "edge_density_normalized",
    # algorithms
    "longest_path_layering",
    "minwidth_layering",
    "minwidth_layering_sweep",
    "promote_layering",
    "promotion_round",
    "coffman_graham_layering",
    "minimum_dummy_layering",
    # span / stretching
    "layer_span",
    "all_layer_spans",
    "stretch_between",
    "stretch_above_below",
]
