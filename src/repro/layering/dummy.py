"""Dummy-vertex insertion: turning a layering into a *proper* layering.

A layering is proper when every edge has span one.  Long edges are subdivided
by chains of dummy vertices, one per crossed layer — this is what later
Sugiyama phases (crossing minimisation, coordinate assignment) operate on, and
it is the source of the width blow-up the paper's ACO algorithm is designed to
control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["DummyVertex", "make_proper", "ProperLayeringResult"]


@dataclass(frozen=True)
class DummyVertex:
    """A dummy vertex subdividing the original edge ``(source, target)`` at *layer*.

    Instances are hashable and therefore usable directly as vertices of the
    proper graph.  ``index`` is the 0-based position along the chain, counted
    from the target (lowest layer) upwards.
    """

    source: Hashable
    target: Hashable
    index: int
    layer: int

    def __repr__(self) -> str:  # compact, readable in drawings and test output
        return f"dummy({self.source}->{self.target}@{self.layer})"


@dataclass
class ProperLayeringResult:
    """Outcome of :func:`make_proper`.

    Attributes
    ----------
    graph:
        The proper graph: original vertices plus :class:`DummyVertex` nodes;
        every edge has span exactly one under :attr:`layering`.
    layering:
        Layer assignment covering both real and dummy vertices.
    dummy_chains:
        Mapping from each original long edge ``(u, v)`` to the list of dummy
        vertices that subdivide it, ordered from ``v``'s side upwards to ``u``.
    """

    graph: DiGraph
    layering: Layering
    dummy_chains: dict[tuple[Vertex, Vertex], list[DummyVertex]]

    @property
    def n_dummies(self) -> int:
        """Total number of dummy vertices inserted."""
        return sum(len(chain) for chain in self.dummy_chains.values())


def make_proper(
    graph: DiGraph,
    layering: Layering,
    *,
    dummy_width: float = 1.0,
    validate: bool = True,
) -> ProperLayeringResult:
    """Subdivide every long edge of *graph* with dummy vertices.

    Parameters
    ----------
    graph: the DAG being layered.
    layering: a valid layering of *graph*.
    dummy_width: drawing width given to every dummy vertex (``nd_width`` in
        the paper; must be positive because dummies become real graph
        vertices here).
    validate: check the layering first (default ``True``).

    Returns
    -------
    ProperLayeringResult
        Proper graph, extended layering, and the per-edge dummy chains.
    """
    if dummy_width <= 0:
        raise ValidationError(f"dummy_width must be positive, got {dummy_width}")
    if validate:
        layering.validate(graph)

    proper = DiGraph()
    for v in graph.vertices():
        proper.add_vertex(v, width=graph.vertex_width(v), label=graph.vertex_label(v))

    assignment = layering.to_dict()
    chains: dict[tuple[Vertex, Vertex], list[DummyVertex]] = {}

    for u, v in graph.edges():
        lu, lv = layering.layer_of(u), layering.layer_of(v)
        span = lu - lv
        if span == 1:
            proper.add_edge(u, v)
            continue
        chain: list[DummyVertex] = []
        prev: Vertex = v
        # Build the chain bottom-up: v -> d(lv+1) -> ... -> d(lu-1) -> u,
        # then orient edges downwards (from the higher vertex to the lower).
        for idx, layer in enumerate(range(lv + 1, lu)):
            d = DummyVertex(source=u, target=v, index=idx, layer=layer)
            proper.add_vertex(d, width=dummy_width, label=None)
            assignment[d] = layer
            proper.add_edge(d, prev)
            chain.append(d)
            prev = d
        proper.add_edge(u, prev)
        chains[(u, v)] = chain

    return ProperLayeringResult(graph=proper, layering=Layering(assignment), dummy_chains=chains)
