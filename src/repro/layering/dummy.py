"""Dummy-vertex insertion: turning a layering into a *proper* layering.

A layering is proper when every edge has span one.  Long edges are subdivided
by chains of dummy vertices, one per crossed layer — this is what later
Sugiyama phases (crossing minimisation, coordinate assignment) operate on, and
it is the source of the width blow-up the paper's ACO algorithm is designed to
control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.utils.exceptions import ValidationError

__all__ = ["DummyVertex", "make_proper", "ProperLayeringResult"]

#: Supported implementations of the chain expansion.
DUMMY_ENGINES = ("vectorized", "python")


@dataclass(frozen=True)
class DummyVertex:
    """A dummy vertex subdividing the original edge ``(source, target)`` at *layer*.

    Instances are hashable and therefore usable directly as vertices of the
    proper graph.  ``index`` is the 0-based position along the chain, counted
    from the target (lowest layer) upwards.
    """

    source: Hashable
    target: Hashable
    index: int
    layer: int

    def __repr__(self) -> str:  # compact, readable in drawings and test output
        return f"dummy({self.source}->{self.target}@{self.layer})"


@dataclass
class ProperLayeringResult:
    """Outcome of :func:`make_proper`.

    Attributes
    ----------
    graph:
        The proper graph: original vertices plus :class:`DummyVertex` nodes;
        every edge has span exactly one under :attr:`layering`.
    layering:
        Layer assignment covering both real and dummy vertices.
    dummy_chains:
        Mapping from each original long edge ``(u, v)`` to the list of dummy
        vertices that subdivide it, ordered from ``v``'s side upwards to ``u``.
    """

    graph: DiGraph
    layering: Layering
    dummy_chains: dict[tuple[Vertex, Vertex], list[DummyVertex]]

    @property
    def n_dummies(self) -> int:
        """Total number of dummy vertices inserted."""
        return sum(len(chain) for chain in self.dummy_chains.values())


def make_proper(
    graph: DiGraph,
    layering: Layering,
    *,
    dummy_width: float = 1.0,
    validate: bool = True,
    engine: str = "vectorized",
) -> ProperLayeringResult:
    """Subdivide every long edge of *graph* with dummy vertices.

    Parameters
    ----------
    graph: the DAG being layered.
    layering: a valid layering of *graph*.
    dummy_width: drawing width given to every dummy vertex (``nd_width`` in
        the paper; must be positive because dummies become real graph
        vertices here).
    validate: check the layering first (default ``True``).
    engine: ``"vectorized"`` (default) precomputes every edge span in one
        array pass and walks the edges against the plain span list;
        ``"python"`` is the per-edge reference querying the layering for
        both endpoints of every edge.  Identical results either way (the
        insertion order of the proper graph is deliberately preserved, see
        the inline note).

    Returns
    -------
    ProperLayeringResult
        Proper graph, extended layering, and the per-edge dummy chains.
    """
    if dummy_width <= 0:
        raise ValidationError(f"dummy_width must be positive, got {dummy_width}")
    if engine not in DUMMY_ENGINES:
        raise ValidationError(f"engine must be one of {DUMMY_ENGINES}, got {engine!r}")
    if validate:
        layering.validate(graph)

    proper = DiGraph()
    for v in graph.vertices():
        proper.add_vertex(v, width=graph.vertex_width(v), label=graph.vertex_label(v))

    assignment = layering.to_dict()
    chains: dict[tuple[Vertex, Vertex], list[DummyVertex]] = {}

    if engine == "vectorized":
        edges = list(graph.edges())
        if edges:
            # One array pass computes every edge span up front (replacing two
            # layer_of calls per edge); the ordered insertion loop below is
            # kept so the proper graph's adjacency insertion order — which
            # downstream Sugiyama phases iterate — is identical to the
            # reference engine's.
            layer_of = np.array([assignment[u] for u, _ in edges], dtype=np.int64)
            layer_of -= np.array([assignment[v] for _, v in edges], dtype=np.int64)
            spans = layer_of.tolist()
            for (u, v), span in zip(edges, spans):
                if span == 1:
                    proper.add_edge(u, v)
                else:
                    chains[(u, v)] = _expand_edge(proper, assignment, u, v, dummy_width)
        return ProperLayeringResult(
            graph=proper, layering=Layering(assignment), dummy_chains=chains
        )

    for u, v in graph.edges():
        lu, lv = layering.layer_of(u), layering.layer_of(v)
        span = lu - lv
        if span == 1:
            proper.add_edge(u, v)
            continue
        chains[(u, v)] = _expand_edge(proper, assignment, u, v, dummy_width)

    return ProperLayeringResult(graph=proper, layering=Layering(assignment), dummy_chains=chains)


def _expand_edge(
    proper: DiGraph,
    assignment: dict[Vertex, int],
    u: Vertex,
    v: Vertex,
    dummy_width: float,
) -> list[DummyVertex]:
    """Subdivide one long edge, mutating *proper* and *assignment* in place.

    Builds the chain bottom-up: ``v -> d(lv+1) -> ... -> d(lu-1) -> u``, then
    orients edges downwards (from the higher vertex to the lower).
    """
    lu, lv = assignment[u], assignment[v]
    chain: list[DummyVertex] = []
    prev: Vertex = v
    for idx, layer in enumerate(range(lv + 1, lu)):
        d = DummyVertex(source=u, target=v, index=idx, layer=layer)
        proper.add_vertex(d, width=dummy_width, label=None)
        assignment[d] = layer
        proper.add_edge(d, prev)
        chain.append(d)
        prev = d
    proper.add_edge(u, prev)
    return chain
