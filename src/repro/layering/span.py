"""Layer-span computation.

The *layer span* ``L(v)`` of a vertex is the contiguous range of layers it can
occupy without flipping any edge, given the current layer assignment of its
neighbours (paper, Section II).  With the bottom-up layer numbering used in
this library:

* every successor ``w`` of ``v`` forces ``layer(v) >= layer(w) + 1``;
* every predecessor ``u`` of ``v`` forces ``layer(v) <= layer(u) - 1``;
* in the absence of successors the lower bound is layer 1, and in the absence
  of predecessors the upper bound is the total number of layers available.

The span is recomputed from the neighbour assignment on demand; it is a pure
function of the assignment, which keeps the ant implementation free of the
bookkeeping bugs that a cached span table invites.
"""

from __future__ import annotations

from typing import Mapping

from repro.graph.digraph import DiGraph, Vertex
from repro.layering.base import Layering
from repro.utils.exceptions import LayeringError

__all__ = ["layer_span", "all_layer_spans"]


def layer_span(
    graph: DiGraph,
    assignment: Mapping[Vertex, int] | Layering,
    v: Vertex,
    n_layers: int,
) -> tuple[int, int]:
    """Inclusive layer span ``(lowest, highest)`` of vertex *v*.

    Parameters
    ----------
    graph: the DAG.
    assignment: current layer of every vertex (the entry for *v* itself is
        ignored — the span describes where *v* could go).
    v: the vertex whose span is requested.
    n_layers: total number of layers currently available (the stretched
        layering's layer count in the ACO algorithm).

    Raises
    ------
    LayeringError
        If the neighbour assignment leaves no feasible layer (which can only
        happen if the assignment is itself invalid).
    """
    lo = 1
    hi = n_layers
    for w in graph.successors(v):
        lw = assignment[w]
        if lw + 1 > lo:
            lo = lw + 1
    for u in graph.predecessors(v):
        lu = assignment[u]
        if lu - 1 < hi:
            hi = lu - 1
    if lo > hi:
        raise LayeringError(
            f"empty layer span for vertex {v!r}: successors force >= {lo}, "
            f"predecessors force <= {hi}"
        )
    return lo, hi


def all_layer_spans(
    graph: DiGraph,
    assignment: Mapping[Vertex, int] | Layering,
    n_layers: int,
) -> dict[Vertex, tuple[int, int]]:
    """Layer span of every vertex under the given assignment."""
    return {v: layer_span(graph, assignment, v, n_layers) for v in graph.vertices()}
