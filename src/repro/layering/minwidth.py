"""The MinWidth heuristic (Algorithm 2 of the paper; Nikolov, Tarassov & Branke 2005).

MinWidth is a list-scheduling layering heuristic that targets small
*dummy-inclusive* width.  Like LPL it fills layers bottom-up, but it tracks two
estimates while doing so:

* ``width_current`` — the width of the layer being filled: the real-vertex
  width already placed there plus one potential dummy (of width ``nd_width``)
  for every edge running from an unplaced vertex down into the layers below;
* ``width_up`` — an estimate of the width of the layers above: one potential
  dummy for every edge running from an unplaced vertex into the current layer.

The candidate with the maximum out-degree is placed first (``ConditionSelect``
— placing it retires the most crossing edges, i.e. gives the maximum reduction
of ``width_current``), and the algorithm moves up to a fresh layer
(``ConditionGoUp``) when the current layer is full relative to the
upper-bound-on-width parameter ``UBW`` and the last placed vertex no longer
reduced the width, or when the estimate for the layers above exceeds
``c · UBW``.

The original authors recommend running MinWidth for a small grid of
``(UBW, c)`` values and keeping the best layering;
:func:`minwidth_layering_sweep` does exactly that and is what the benchmark
harness uses as the "MinWidth" baseline.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.layering.metrics import width_including_dummies
from repro.utils.exceptions import ValidationError

__all__ = ["minwidth_layering", "minwidth_layering_sweep"]

#: (UBW, c) grid recommended by Nikolov, Tarassov & Branke for the sweep variant.
DEFAULT_SWEEP_GRID: tuple[tuple[float, int], ...] = (
    (1, 1),
    (1, 2),
    (2, 1),
    (2, 2),
    (3, 1),
    (3, 2),
    (4, 1),
    (4, 2),
)


def minwidth_layering(
    graph: DiGraph,
    *,
    ubw: float = 4.0,
    c: float = 2.0,
    nd_width: float = 1.0,
) -> Layering:
    """Layer *graph* with the MinWidth heuristic for one ``(UBW, c)`` setting.

    Parameters
    ----------
    graph: the DAG to layer.
    ubw: upper bound on the (estimated) layer width before the heuristic
        prefers opening a new layer.
    c: multiplier applied to *ubw* for the ``width_up`` go-up condition.
    nd_width: width attributed to potential dummy vertices in the running
        width estimates.

    Returns a valid layering (layers numbered 1 upward, bottom-up).
    """
    require_nonempty(graph)
    require_dag(graph)
    if ubw <= 0:
        raise ValidationError(f"ubw must be positive, got {ubw}")
    if c <= 0:
        raise ValidationError(f"c must be positive, got {c}")
    if nd_width < 0:
        raise ValidationError(f"nd_width must be >= 0, got {nd_width}")

    placed: set[Vertex] = set()          # U in the paper
    below: set[Vertex] = set()           # Z in the paper (placed on layers below current)
    assignment: dict[Vertex, int] = {}
    current_layer = 1
    width_current = 0.0
    width_up = 0.0

    def candidates() -> list[Vertex]:
        return [
            v
            for v in graph.vertices()
            if v not in placed and all(w in below for w in graph.successors(v))
        ]

    n = graph.n_vertices
    while len(placed) < n:
        cands = candidates()
        selected: Vertex | None = None
        if cands:
            # ConditionSelect: candidate with maximum out-degree (max reduction
            # of width_current); ties broken by insertion order.
            selected = max(cands, key=graph.out_degree)
            assignment[selected] = current_layer
            placed.add(selected)
            width_current += graph.vertex_width(selected) - nd_width * graph.out_degree(selected)
            width_up += nd_width * graph.in_degree(selected)

        go_up = False
        if selected is None:
            go_up = True
        else:
            # ConditionGoUp: the current layer is (estimated) over the bound and
            # the vertex we just placed no longer reduces the width (it has no
            # outgoing edges to retire), or the layers above are already
            # estimated to exceed c * UBW.
            if width_current >= ubw and graph.out_degree(selected) < 1:
                go_up = True
            if width_up >= c * ubw:
                go_up = True

        if go_up and len(placed) < n:
            current_layer += 1
            below |= placed
            width_current = width_up
            width_up = 0.0

    # A pass that selects no vertex increments the layer counter without
    # placing anything, which can leave empty layers behind; compact them.
    return Layering(assignment).normalized()


def minwidth_layering_sweep(
    graph: DiGraph,
    *,
    grid: tuple[tuple[float, float], ...] = DEFAULT_SWEEP_GRID,
    nd_width: float = 1.0,
) -> Layering:
    """Run :func:`minwidth_layering` over a ``(UBW, c)`` grid and keep the best.

    "Best" means the smallest dummy-inclusive width, with height as the
    tie-breaker — the selection rule used in the original MinWidth evaluation.
    """
    require_nonempty(graph)
    if not grid:
        raise ValidationError("sweep grid must contain at least one (ubw, c) pair")
    best: Layering | None = None
    best_key: tuple[float, int] | None = None
    for ubw, c in grid:
        layering = minwidth_layering(graph, ubw=ubw, c=c, nd_width=nd_width)
        key = (
            width_including_dummies(graph, layering, nd_width=nd_width),
            layering.height,
        )
        if best_key is None or key < best_key:
            best, best_key = layering, key
    assert best is not None
    return best
