"""The MinWidth heuristic (Algorithm 2 of the paper; Nikolov, Tarassov & Branke 2005).

MinWidth is a list-scheduling layering heuristic that targets small
*dummy-inclusive* width.  Like LPL it fills layers bottom-up, but it tracks two
estimates while doing so:

* ``width_current`` — the width of the layer being filled: the real-vertex
  width already placed there plus one potential dummy (of width ``nd_width``)
  for every edge running from an unplaced vertex down into the layers below;
* ``width_up`` — an estimate of the width of the layers above: one potential
  dummy for every edge running from an unplaced vertex into the current layer.

The candidate with the maximum out-degree is placed first (``ConditionSelect``
— placing it retires the most crossing edges, i.e. gives the maximum reduction
of ``width_current``), and the algorithm moves up to a fresh layer
(``ConditionGoUp``) when the current layer is full relative to the
upper-bound-on-width parameter ``UBW`` and the last placed vertex no longer
reduced the width, or when the estimate for the layers above exceeds
``c · UBW``.

The original authors recommend running MinWidth for a small grid of
``(UBW, c)`` values and keeping the best layering;
:func:`minwidth_layering_sweep` does exactly that and is what the benchmark
harness uses as the "MinWidth" baseline.

Two engines implement the heuristic.  The historical per-vertex reference
(``engine="python"``) re-scans every vertex (and each vertex's whole
successor list) on every placement, which is quadratic-plus in practice.  The
default ``engine="vectorized"`` keeps a NumPy candidate mask and a running
count of each vertex's successors already placed *below* the current layer,
so one placement costs a handful of array operations.  Selection order,
tie-breaking and the floating-point width bookkeeping are identical, so both
engines return the same layering for every input (pinned by tests).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.layering.metrics import _interval_counts, width_including_dummies
from repro.utils.exceptions import ValidationError

__all__ = ["minwidth_layering", "minwidth_layering_sweep"]

#: Supported implementations of the heuristic.
MINWIDTH_ENGINES = ("vectorized", "python")

#: (UBW, c) grid recommended by Nikolov, Tarassov & Branke for the sweep variant.
DEFAULT_SWEEP_GRID: tuple[tuple[float, int], ...] = (
    (1, 1),
    (1, 2),
    (2, 1),
    (2, 2),
    (3, 1),
    (3, 2),
    (4, 1),
    (4, 2),
)


def minwidth_layering(
    graph: DiGraph,
    *,
    ubw: float = 4.0,
    c: float = 2.0,
    nd_width: float = 1.0,
    engine: str = "vectorized",
) -> Layering:
    """Layer *graph* with the MinWidth heuristic for one ``(UBW, c)`` setting.

    Parameters
    ----------
    graph: the DAG to layer.
    ubw: upper bound on the (estimated) layer width before the heuristic
        prefers opening a new layer.
    c: multiplier applied to *ubw* for the ``width_up`` go-up condition.
    nd_width: width attributed to potential dummy vertices in the running
        width estimates.
    engine: ``"vectorized"`` (default, NumPy candidate scan) or ``"python"``
        (per-vertex reference).  Identical layerings either way.

    Returns a valid layering (layers numbered 1 upward, bottom-up).
    """
    require_nonempty(graph)
    require_dag(graph)
    if ubw <= 0:
        raise ValidationError(f"ubw must be positive, got {ubw}")
    if c <= 0:
        raise ValidationError(f"c must be positive, got {c}")
    if nd_width < 0:
        raise ValidationError(f"nd_width must be >= 0, got {nd_width}")
    if engine not in MINWIDTH_ENGINES:
        raise ValidationError(
            f"engine must be one of {MINWIDTH_ENGINES}, got {engine!r}"
        )
    if engine == "vectorized":
        return _minwidth_vectorized(graph, ubw=ubw, c=c, nd_width=nd_width)

    placed: set[Vertex] = set()          # U in the paper
    below: set[Vertex] = set()           # Z in the paper (placed on layers below current)
    assignment: dict[Vertex, int] = {}
    current_layer = 1
    width_current = 0.0
    width_up = 0.0

    def candidates() -> list[Vertex]:
        return [
            v
            for v in graph.vertices()
            if v not in placed and all(w in below for w in graph.successors(v))
        ]

    n = graph.n_vertices
    while len(placed) < n:
        cands = candidates()
        selected: Vertex | None = None
        if cands:
            # ConditionSelect: candidate with maximum out-degree (max reduction
            # of width_current); ties broken by insertion order.
            selected = max(cands, key=graph.out_degree)
            assignment[selected] = current_layer
            placed.add(selected)
            width_current += graph.vertex_width(selected) - nd_width * graph.out_degree(selected)
            width_up += nd_width * graph.in_degree(selected)

        go_up = False
        if selected is None:
            go_up = True
        else:
            # ConditionGoUp: the current layer is (estimated) over the bound and
            # the vertex we just placed no longer reduces the width (it has no
            # outgoing edges to retire), or the layers above are already
            # estimated to exceed c * UBW.
            if width_current >= ubw and graph.out_degree(selected) < 1:
                go_up = True
            if width_up >= c * ubw:
                go_up = True

        if go_up and len(placed) < n:
            current_layer += 1
            below |= placed
            width_current = width_up
            width_up = 0.0

    # A pass that selects no vertex increments the layer counter without
    # placing anything, which can leave empty layers behind; compact them.
    return Layering(assignment).normalized()


class _MinWidthIndex:
    """Index-based view of one graph, shared by every ``(UBW, c)`` run.

    The heuristic is inherently a sequential placement loop, so the wins at
    corpus scale are constant-factor: the graph is indexed once (the sweep
    re-runs the heuristic eight times), candidacy is tracked *event-driven*
    (a vertex enters the candidate set exactly when its last successor
    retires below, so one placement scans the handful of current candidates
    instead of an ``n``-vector), and the sweep scores each result in array
    space without materialising intermediate :class:`Layering` objects.
    Selection order, tie-breaking and the scalar float width bookkeeping are
    exactly the reference engine's.
    """

    __slots__ = (
        "vertices", "n", "out_degree", "in_degree", "widths", "preds",
        "edge_src", "edge_dst",
    )

    def __init__(self, graph: DiGraph) -> None:
        self.vertices = list(graph.vertices())
        index = {v: i for i, v in enumerate(self.vertices)}
        self.n = len(self.vertices)
        self.out_degree = [graph.out_degree(v) for v in self.vertices]
        self.in_degree = [graph.in_degree(v) for v in self.vertices]
        self.widths = [graph.vertex_width(v) for v in self.vertices]
        self.preds = [[index[u] for u in graph.predecessors(v)] for v in self.vertices]
        src: list[int] = []
        dst: list[int] = []
        for v, name in enumerate(self.vertices):
            for w in graph.successors(name):
                src.append(v)
                dst.append(index[w])
        self.edge_src = np.array(src, dtype=np.int64)
        self.edge_dst = np.array(dst, dtype=np.int64)

    def run(self, *, ubw: float, c: float, nd_width: float) -> list[int]:
        """One MinWidth pass; returns the raw (un-normalised) layer list.

        A vertex is a candidate exactly when ``succ_below[v] ==
        out_degree[v]`` and it is unplaced.  The reference finds the *first*
        maximal out-degree in index order; over a set that is "maximum
        out-degree, smallest index", which is iteration-order independent,
        so a plain set stands in for the full rescans.
        """
        n = self.n
        out_degree = self.out_degree
        preds = self.preds
        # Per-vertex width contributions for this nd_width, hoisted out of
        # the placement loop (the very expressions the reference evaluates,
        # so the running floats are bit-equal).
        down = [self.widths[v] - nd_width * out_degree[v] for v in range(n)]
        up = [nd_width * self.in_degree[v] for v in range(n)]

        succ_below = [0] * n
        assignment = [0] * n
        placed = [False] * n
        candidates = {v for v in range(n) if out_degree[v] == 0}
        pending: list[int] = []            # placed since the last go-up

        current_layer = 1
        width_current = 0.0
        width_up = 0.0
        n_placed = 0

        while n_placed < n:
            selected = -1
            if candidates:
                # ConditionSelect: maximum out-degree, ties to the smallest
                # index (== insertion order, as in both reference engines).
                best_deg = -1
                for v in candidates:
                    d = out_degree[v]
                    if d > best_deg or (d == best_deg and v < selected):
                        best_deg, selected = d, v
                candidates.discard(selected)
                assignment[selected] = current_layer
                placed[selected] = True
                pending.append(selected)
                n_placed += 1
                width_current += down[selected]
                width_up += up[selected]

            go_up = False
            if selected < 0:
                go_up = True
            else:
                # ConditionGoUp: same two tests as the reference engine.
                if width_current >= ubw and out_degree[selected] < 1:
                    go_up = True
                if width_up >= c * ubw:
                    go_up = True

            if go_up and n_placed < n:
                current_layer += 1
                for w in pending:
                    # w enters `below`: its predecessors gain one retired
                    # successor; the last retirement makes them candidates.
                    for u in preds[w]:
                        succ_below[u] += 1
                        if not placed[u] and succ_below[u] == out_degree[u]:
                            candidates.add(u)
                pending.clear()
                width_current = width_up
                width_up = 0.0

        return assignment

    def score(self, assignment: list[int], nd_width: float) -> tuple[float, int]:
        """``(width_including_dummies, height)`` of the normalised layering.

        Array-space equivalent of evaluating the compacted layering through
        :func:`repro.layering.metrics.width_including_dummies`: identical
        per-layer accumulation order (``np.bincount`` folds vertex widths in
        index order, which *is* graph insertion order), identical dummy
        arithmetic — so sweep selection keys are bit-equal to the historical
        per-``Layering`` evaluation.
        """
        layers = np.asarray(assignment, dtype=np.int64)
        # Rank used layers 1..height without a sort: layers are small
        # positive ints, so a bincount + cumsum is the normalisation map.
        rank = np.cumsum(np.bincount(layers) > 0)
        height = int(rank[-1])
        compact = rank[layers]  # 1-based normalised layers
        real = np.bincount(
            compact, weights=np.asarray(self.widths), minlength=height + 2
        )[1 : height + 1]
        if nd_width > 0 and len(self.edge_src):
            tails = compact[self.edge_src]
            heads = compact[self.edge_dst]
            dummies = _interval_counts(heads + 1, tails, 1, height)
            real = real + nd_width * dummies
        return float(real.max()), height

    def to_layering(self, assignment: list[int]) -> Layering:
        """Label-keyed, normalised layering from a raw layer list."""
        return Layering(
            {self.vertices[i]: assignment[i] for i in range(self.n)}
        ).normalized()


def _minwidth_vectorized(
    graph: DiGraph, *, ubw: float, c: float, nd_width: float
) -> Layering:
    """Index-based MinWidth for one setting (see :class:`_MinWidthIndex`)."""
    index = _MinWidthIndex(graph)
    return index.to_layering(index.run(ubw=ubw, c=c, nd_width=nd_width))


def minwidth_layering_sweep(
    graph: DiGraph,
    *,
    grid: tuple[tuple[float, float], ...] = DEFAULT_SWEEP_GRID,
    nd_width: float = 1.0,
    engine: str = "vectorized",
) -> Layering:
    """Run :func:`minwidth_layering` over a ``(UBW, c)`` grid and keep the best.

    "Best" means the smallest dummy-inclusive width, with height as the
    tie-breaker — the selection rule used in the original MinWidth evaluation.
    """
    require_nonempty(graph)
    if not grid:
        raise ValidationError("sweep grid must contain at least one (ubw, c) pair")
    if engine not in MINWIDTH_ENGINES:
        raise ValidationError(
            f"engine must be one of {MINWIDTH_ENGINES}, got {engine!r}"
        )
    if engine == "python":
        best: Layering | None = None
        best_key: tuple[float, int] | None = None
        for ubw, c in grid:
            layering = minwidth_layering(
                graph, ubw=ubw, c=c, nd_width=nd_width, engine=engine
            )
            key = (
                width_including_dummies(graph, layering, nd_width=nd_width),
                layering.height,
            )
            if best_key is None or key < best_key:
                best, best_key = layering, key
        assert best is not None
        return best

    # Index once, run the grid over it, score in array space, and build a
    # Layering only for the winner — the selection keys are bit-equal to
    # the per-Layering evaluation above, so both sweep engines agree.
    require_dag(graph)
    if nd_width < 0:
        raise ValidationError(f"nd_width must be >= 0, got {nd_width}")
    index = _MinWidthIndex(graph)
    best_raw: list[int] | None = None
    best_key = None
    for ubw, c in grid:
        if ubw <= 0:
            raise ValidationError(f"ubw must be positive, got {ubw}")
        if c <= 0:
            raise ValidationError(f"c must be positive, got {c}")
        raw = index.run(ubw=ubw, c=c, nd_width=nd_width)
        width, height = index.score(raw, nd_width)
        key = (width, height)
        if best_key is None or key < best_key:
            best_raw, best_key = raw, key
    assert best_raw is not None
    return index.to_layering(best_raw)
