"""The MinWidth heuristic (Algorithm 2 of the paper; Nikolov, Tarassov & Branke 2005).

MinWidth is a list-scheduling layering heuristic that targets small
*dummy-inclusive* width.  Like LPL it fills layers bottom-up, but it tracks two
estimates while doing so:

* ``width_current`` — the width of the layer being filled: the real-vertex
  width already placed there plus one potential dummy (of width ``nd_width``)
  for every edge running from an unplaced vertex down into the layers below;
* ``width_up`` — an estimate of the width of the layers above: one potential
  dummy for every edge running from an unplaced vertex into the current layer.

The candidate with the maximum out-degree is placed first (``ConditionSelect``
— placing it retires the most crossing edges, i.e. gives the maximum reduction
of ``width_current``), and the algorithm moves up to a fresh layer
(``ConditionGoUp``) when the current layer is full relative to the
upper-bound-on-width parameter ``UBW`` and the last placed vertex no longer
reduced the width, or when the estimate for the layers above exceeds
``c · UBW``.

The original authors recommend running MinWidth for a small grid of
``(UBW, c)`` values and keeping the best layering;
:func:`minwidth_layering_sweep` does exactly that and is what the benchmark
harness uses as the "MinWidth" baseline.

Two engines implement the heuristic.  The historical per-vertex reference
(``engine="python"``) re-scans every vertex (and each vertex's whole
successor list) on every placement, which is quadratic-plus in practice.  The
default ``engine="vectorized"`` keeps a NumPy candidate mask and a running
count of each vertex's successors already placed *below* the current layer,
so one placement costs a handful of array operations.  Selection order,
tie-breaking and the floating-point width bookkeeping are identical, so both
engines return the same layering for every input (pinned by tests).
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph, Vertex
from repro.graph.validation import require_dag, require_nonempty
from repro.layering.base import Layering
from repro.layering.metrics import width_including_dummies
from repro.utils.exceptions import ValidationError

__all__ = ["minwidth_layering", "minwidth_layering_sweep"]

#: Supported implementations of the heuristic.
MINWIDTH_ENGINES = ("vectorized", "python")

#: (UBW, c) grid recommended by Nikolov, Tarassov & Branke for the sweep variant.
DEFAULT_SWEEP_GRID: tuple[tuple[float, int], ...] = (
    (1, 1),
    (1, 2),
    (2, 1),
    (2, 2),
    (3, 1),
    (3, 2),
    (4, 1),
    (4, 2),
)


def minwidth_layering(
    graph: DiGraph,
    *,
    ubw: float = 4.0,
    c: float = 2.0,
    nd_width: float = 1.0,
    engine: str = "vectorized",
) -> Layering:
    """Layer *graph* with the MinWidth heuristic for one ``(UBW, c)`` setting.

    Parameters
    ----------
    graph: the DAG to layer.
    ubw: upper bound on the (estimated) layer width before the heuristic
        prefers opening a new layer.
    c: multiplier applied to *ubw* for the ``width_up`` go-up condition.
    nd_width: width attributed to potential dummy vertices in the running
        width estimates.
    engine: ``"vectorized"`` (default, NumPy candidate scan) or ``"python"``
        (per-vertex reference).  Identical layerings either way.

    Returns a valid layering (layers numbered 1 upward, bottom-up).
    """
    require_nonempty(graph)
    require_dag(graph)
    if ubw <= 0:
        raise ValidationError(f"ubw must be positive, got {ubw}")
    if c <= 0:
        raise ValidationError(f"c must be positive, got {c}")
    if nd_width < 0:
        raise ValidationError(f"nd_width must be >= 0, got {nd_width}")
    if engine not in MINWIDTH_ENGINES:
        raise ValidationError(
            f"engine must be one of {MINWIDTH_ENGINES}, got {engine!r}"
        )
    if engine == "vectorized":
        return _minwidth_vectorized(graph, ubw=ubw, c=c, nd_width=nd_width)

    placed: set[Vertex] = set()          # U in the paper
    below: set[Vertex] = set()           # Z in the paper (placed on layers below current)
    assignment: dict[Vertex, int] = {}
    current_layer = 1
    width_current = 0.0
    width_up = 0.0

    def candidates() -> list[Vertex]:
        return [
            v
            for v in graph.vertices()
            if v not in placed and all(w in below for w in graph.successors(v))
        ]

    n = graph.n_vertices
    while len(placed) < n:
        cands = candidates()
        selected: Vertex | None = None
        if cands:
            # ConditionSelect: candidate with maximum out-degree (max reduction
            # of width_current); ties broken by insertion order.
            selected = max(cands, key=graph.out_degree)
            assignment[selected] = current_layer
            placed.add(selected)
            width_current += graph.vertex_width(selected) - nd_width * graph.out_degree(selected)
            width_up += nd_width * graph.in_degree(selected)

        go_up = False
        if selected is None:
            go_up = True
        else:
            # ConditionGoUp: the current layer is (estimated) over the bound and
            # the vertex we just placed no longer reduces the width (it has no
            # outgoing edges to retire), or the layers above are already
            # estimated to exceed c * UBW.
            if width_current >= ubw and graph.out_degree(selected) < 1:
                go_up = True
            if width_up >= c * ubw:
                go_up = True

        if go_up and len(placed) < n:
            current_layer += 1
            below |= placed
            width_current = width_up
            width_up = 0.0

    # A pass that selects no vertex increments the layer counter without
    # placing anything, which can leave empty layers behind; compact them.
    return Layering(assignment).normalized()


def _minwidth_vectorized(
    graph: DiGraph, *, ubw: float, c: float, nd_width: float
) -> Layering:
    """Array-native MinWidth: same algorithm, candidate scan on NumPy masks.

    The reference scans every vertex (checking its full successor list
    against the ``below`` set) once per placement.  Here a vertex is a
    candidate exactly when ``succ_below[v] == out_degree[v]`` and it is not
    placed, maintained incrementally: whenever the heuristic moves up a
    layer, the vertices placed since the previous move enter ``below`` and
    bump the counters of their predecessors.  ``max(cands, key=out_degree)``
    with insertion-order tie-breaking becomes a masked ``argmax`` (NumPy
    returns the first maximum, and index order *is* insertion order).  The
    scalar width bookkeeping is untouched, so the produced layering is
    identical to the reference engine's.
    """
    vertices = list(graph.vertices())
    index = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    out_degree = np.array([graph.out_degree(v) for v in vertices], dtype=np.int64)
    in_degree = np.array([graph.in_degree(v) for v in vertices], dtype=np.int64)
    widths = np.array([graph.vertex_width(v) for v in vertices], dtype=np.float64)
    pred = [np.array([index[u] for u in graph.predecessors(v)], dtype=np.int64)
            for v in vertices]

    placed = np.zeros(n, dtype=bool)
    succ_below = np.zeros(n, dtype=np.int64)   # successors already in Z (below)
    assignment = np.zeros(n, dtype=np.int64)
    pending: list[int] = []                    # placed since the last go-up

    current_layer = 1
    width_current = 0.0
    width_up = 0.0
    n_placed = 0

    while n_placed < n:
        candidates = (~placed) & (succ_below == out_degree)
        selected = -1
        if candidates.any():
            # ConditionSelect: first maximal out-degree among the candidates.
            selectable = np.where(candidates, out_degree, -1)
            selected = int(selectable.argmax())
            assignment[selected] = current_layer
            placed[selected] = True
            pending.append(selected)
            n_placed += 1
            width_current += float(widths[selected]) - nd_width * int(out_degree[selected])
            width_up += nd_width * int(in_degree[selected])

        go_up = False
        if selected < 0:
            go_up = True
        else:
            # ConditionGoUp: same two tests as the reference engine.
            if width_current >= ubw and int(out_degree[selected]) < 1:
                go_up = True
            if width_up >= c * ubw:
                go_up = True

        if go_up and n_placed < n:
            current_layer += 1
            for w in pending:
                # w enters `below`: its predecessors gain one retired successor.
                succ_below[pred[w]] += 1
            pending.clear()
            width_current = width_up
            width_up = 0.0

    layering = Layering({vertices[i]: int(assignment[i]) for i in range(n)})
    return layering.normalized()


def minwidth_layering_sweep(
    graph: DiGraph,
    *,
    grid: tuple[tuple[float, float], ...] = DEFAULT_SWEEP_GRID,
    nd_width: float = 1.0,
    engine: str = "vectorized",
) -> Layering:
    """Run :func:`minwidth_layering` over a ``(UBW, c)`` grid and keep the best.

    "Best" means the smallest dummy-inclusive width, with height as the
    tie-breaker — the selection rule used in the original MinWidth evaluation.
    """
    require_nonempty(graph)
    if not grid:
        raise ValidationError("sweep grid must contain at least one (ubw, c) pair")
    best: Layering | None = None
    best_key: tuple[float, int] | None = None
    for ubw, c in grid:
        layering = minwidth_layering(graph, ubw=ubw, c=c, nd_width=nd_width, engine=engine)
        key = (
            width_including_dummies(graph, layering, nd_width=nd_width),
            layering.height,
        )
        if best_key is None or key < best_key:
            best, best_key = layering, key
    assert best is not None
    return best
