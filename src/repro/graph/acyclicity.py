"""Acyclicity tools: topological sorting, cycle detection and cycle removal.

The layering algorithms in this library require a DAG.  Real inputs are often
general digraphs, so the Sugiyama framework prepends a *cycle removal* step
that reverses a small set of edges (a feedback arc set) to make the graph
acyclic.  This module provides:

* :func:`topological_sort` — Kahn's algorithm, raising :class:`CycleError`
  with a witness cycle when the graph is cyclic;
* :func:`is_acyclic` / :func:`find_cycle` — cheap cycle queries;
* :func:`feedback_arc_set` — the Eades–Lin–Smyth greedy heuristic, which
  guarantees at most ``|E|/2 - |V|/6`` reversed edges;
* :func:`make_acyclic` — apply the heuristic and return the acyclified graph
  together with the list of reversed edges so drawings can restore the
  original arrowheads.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.graph.digraph import DiGraph, Vertex
from repro.utils.exceptions import CycleError

__all__ = [
    "topological_sort",
    "is_acyclic",
    "find_cycle",
    "feedback_arc_set",
    "make_acyclic",
    "longest_path_lengths",
]


def topological_sort(graph: DiGraph) -> list[Vertex]:
    """Return the vertices of *graph* in a topological order (Kahn's algorithm).

    Ties are broken by insertion order, so the result is deterministic for a
    given construction sequence.

    Raises
    ------
    CycleError
        If the graph contains a directed cycle; the exception carries a
        witness cycle.
    """
    # Same-package fast path: read the adjacency dictionaries directly (no
    # per-vertex membership checks, no defensive list copies) — this sort
    # runs at the top of every layering algorithm, several times per
    # experiment cell.
    succ = graph._succ
    in_deg = {v: len(pred) for v, pred in graph._pred.items()}
    queue: deque[Vertex] = deque(v for v, d in in_deg.items() if d == 0)
    order: list[Vertex] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in succ[v]:
            in_deg[w] -= 1
            if in_deg[w] == 0:
                queue.append(w)
    if len(order) != graph.n_vertices:
        cycle = find_cycle(graph)
        raise CycleError("graph contains a directed cycle", cycle=cycle)
    return order


def is_acyclic(graph: DiGraph) -> bool:
    """Return ``True`` when *graph* contains no directed cycle."""
    try:
        topological_sort(graph)
        return True
    except CycleError:
        return False


def find_cycle(graph: DiGraph) -> list[Vertex] | None:
    """Return one directed cycle as a vertex list, or ``None`` if acyclic.

    The returned list ``[v0, ..., vk]`` satisfies: every consecutive pair is
    an edge of the graph and ``(vk, v0)`` is also an edge.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {v: WHITE for v in graph.vertices()}
    parent: dict[Vertex, Vertex | None] = {}

    for root in graph.vertices():
        if colour[root] != WHITE:
            continue
        # Iterative DFS keeping an explicit stack of (vertex, iterator).
        stack: list[tuple[Vertex, list[Vertex], int]] = [(root, graph.successors(root), 0)]
        colour[root] = GREY
        parent[root] = None
        while stack:
            v, succs, idx = stack[-1]
            if idx < len(succs):
                stack[-1] = (v, succs, idx + 1)
                w = succs[idx]
                if colour[w] == WHITE:
                    colour[w] = GREY
                    parent[w] = v
                    stack.append((w, graph.successors(w), 0))
                elif colour[w] == GREY:
                    # Found a back edge v -> w: walk parents from v back to w.
                    cycle = [v]
                    cur = v
                    while cur != w:
                        cur = parent[cur]  # type: ignore[assignment]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            else:
                colour[v] = BLACK
                stack.pop()
    return None


def feedback_arc_set(graph: DiGraph) -> list[tuple[Vertex, Vertex]]:
    """Greedy Eades–Lin–Smyth feedback arc set.

    Builds a vertex sequence ``s1 + reversed(s2)`` by repeatedly peeling sinks
    (appended to ``s2``), sources (appended to ``s1``) and, when neither
    exists, the vertex maximising ``outdeg - indeg``.  Every edge that points
    backwards with respect to the resulting sequence is returned; reversing
    (or deleting) those edges makes the graph acyclic.

    The result is empty exactly when the graph is already a DAG.
    """
    work = graph.copy()
    s1: list[Vertex] = []
    s2: list[Vertex] = []
    while work.n_vertices:
        progressed = True
        while progressed:
            progressed = False
            for v in list(work.vertices()):
                if work.out_degree(v) == 0:
                    s2.append(v)
                    work.remove_vertex(v)
                    progressed = True
            for v in list(work.vertices()):
                if v in work and work.in_degree(v) == 0:
                    s1.append(v)
                    work.remove_vertex(v)
                    progressed = True
        if work.n_vertices:
            v = max(work.vertices(), key=lambda u: work.out_degree(u) - work.in_degree(u))
            s1.append(v)
            work.remove_vertex(v)
    sequence: Sequence[Vertex] = s1 + list(reversed(s2))
    position = {v: i for i, v in enumerate(sequence)}
    return [(u, v) for u, v in graph.edges() if position[u] > position[v]]


def make_acyclic(graph: DiGraph) -> tuple[DiGraph, list[tuple[Vertex, Vertex]]]:
    """Return an acyclic copy of *graph* plus the list of edges that were reversed.

    Edges in the feedback arc set are reversed (not deleted); an edge whose
    reversal already exists is dropped instead to keep the result simple.
    The second element of the returned tuple lists the *original* orientation
    of every reversed edge so callers can restore arrowheads after drawing.
    """
    fas = feedback_arc_set(graph)
    if not fas:
        return graph.copy(), []
    fas_set = set(fas)
    result = DiGraph(allow_self_loops=graph.allow_self_loops)
    for v in graph.vertices():
        result.add_vertex(v, width=graph.vertex_width(v), label=graph.vertex_label(v))
    reversed_edges: list[tuple[Vertex, Vertex]] = []
    for u, v in graph.edges():
        if (u, v) in fas_set:
            if not graph.has_edge(v, u) and not result.has_edge(v, u):
                result.add_edge(v, u)
            reversed_edges.append((u, v))
        else:
            result.add_edge(u, v)
    return result, reversed_edges


def longest_path_lengths(graph: DiGraph, *, from_sinks: bool = True) -> dict[Vertex, int]:
    """Length (in edges) of the longest path from each vertex to a sink.

    With ``from_sinks=False`` the longest path *from a source to the vertex*
    is computed instead.  Both variants run in linear time over a topological
    order and underpin the Longest-Path Layering algorithm and the layering
    validity checks.

    Raises
    ------
    CycleError
        If the graph is cyclic.
    """
    order = topological_sort(graph)
    dist = {v: 0 for v in graph.vertices()}
    if from_sinks:
        succ = graph._succ
        for v in reversed(order):
            for w in succ[v]:
                if dist[w] + 1 > dist[v]:
                    dist[v] = dist[w] + 1
    else:
        pred = graph._pred
        for v in order:
            for u in pred[v]:
                if dist[u] + 1 > dist[v]:
                    dist[v] = dist[u] + 1
    return dist
