"""Structural graph transforms used by tests, generators and the pipeline.

None of these are on the hot path of the ACO algorithm; they exist so the
library is usable as a general DAG toolkit (condensation of a cyclic input,
transitive reduction before drawing, relabeling to integer ids for compact
storage, ...).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.graph.acyclicity import topological_sort
from repro.graph.digraph import DiGraph, Vertex
from repro.utils.exceptions import GraphError

__all__ = [
    "reverse",
    "relabel",
    "to_integer_labels",
    "induced_subgraph",
    "strongly_connected_components",
    "condensation",
    "transitive_closure",
    "transitive_reduction",
    "union",
]


def reverse(graph: DiGraph) -> DiGraph:
    """Return a copy of *graph* with all edges reversed (alias of ``graph.reverse()``)."""
    return graph.reverse()


def relabel(graph: DiGraph, mapping: Mapping[Vertex, Hashable] | Callable[[Vertex], Hashable]) -> DiGraph:
    """Return a copy of *graph* with vertices renamed through *mapping*.

    *mapping* may be a dict-like (missing keys keep their old name) or a
    callable applied to every vertex.  The mapping must be injective on the
    vertex set, otherwise a :class:`GraphError` is raised.
    """
    if callable(mapping) and not isinstance(mapping, Mapping):
        name = {v: mapping(v) for v in graph.vertices()}
    else:
        name = {v: mapping.get(v, v) for v in graph.vertices()}  # type: ignore[union-attr]
    if len(set(name.values())) != len(name):
        raise GraphError("relabel mapping is not injective on the vertex set")
    out = DiGraph(allow_self_loops=graph.allow_self_loops)
    for v in graph.vertices():
        out.add_vertex(name[v], width=graph.vertex_width(v), label=graph.vertex_label(v))
    for u, v in graph.edges():
        out.add_edge(name[u], name[v])
    return out


def to_integer_labels(graph: DiGraph) -> tuple[DiGraph, dict[Vertex, int]]:
    """Relabel vertices to ``0..n-1`` in insertion order; also return the mapping."""
    mapping = {v: i for i, v in enumerate(graph.vertices())}
    return relabel(graph, mapping), mapping


def induced_subgraph(graph: DiGraph, keep: Iterable[Vertex]) -> DiGraph:
    """Subgraph induced by *keep* (alias of ``graph.subgraph``)."""
    return graph.subgraph(keep)


def strongly_connected_components(graph: DiGraph) -> list[list[Vertex]]:
    """Tarjan's algorithm (iterative) returning SCCs in reverse topological order."""
    index: dict[Vertex, int] = {}
    lowlink: dict[Vertex, int] = {}
    on_stack: set[Vertex] = set()
    stack: list[Vertex] = []
    components: list[list[Vertex]] = []
    counter = 0

    for root in graph.vertices():
        if root in index:
            continue
        work: list[tuple[Vertex, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            succs = graph.successors(v)
            while pi < len(succs):
                w = succs[pi]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                comp: list[Vertex] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                components.append(comp)
    return components


def condensation(graph: DiGraph) -> tuple[DiGraph, dict[Vertex, int]]:
    """Contract every strongly connected component to a single vertex.

    Returns the condensation DAG (vertices ``0..k-1``, one per SCC, width equal
    to the sum of member widths) and a mapping from original vertex to its
    component id.  The condensation of any digraph is acyclic, so this is the
    standard way to feed a cyclic input to the layering algorithms without
    reversing edges.
    """
    comps = strongly_connected_components(graph)
    comp_id: dict[Vertex, int] = {}
    for i, comp in enumerate(comps):
        for v in comp:
            comp_id[v] = i
    dag = DiGraph()
    for i, comp in enumerate(comps):
        width = sum(graph.vertex_width(v) for v in comp)
        dag.add_vertex(i, width=width, label="+".join(str(v) for v in comp))
    for u, v in graph.edges():
        cu, cv = comp_id[u], comp_id[v]
        if cu != cv and not dag.has_edge(cu, cv):
            dag.add_edge(cu, cv)
    return dag, comp_id


def transitive_closure(graph: DiGraph) -> DiGraph:
    """Return the transitive closure of a DAG (edge ``u->v`` iff a path exists)."""
    order = topological_sort(graph)
    reach: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    for v in reversed(order):
        for w in graph.successors(v):
            reach[v].add(w)
            reach[v] |= reach[w]
    closure = DiGraph()
    for v in graph.vertices():
        closure.add_vertex(v, width=graph.vertex_width(v), label=graph.vertex_label(v))
    for v, targets in reach.items():
        for w in targets:
            closure.add_edge(v, w)
    return closure


def transitive_reduction(graph: DiGraph) -> DiGraph:
    """Return the transitive reduction of a DAG.

    The reduction keeps edge ``u -> v`` only when there is no other path from
    ``u`` to ``v``.  For a DAG the reduction is unique.
    """
    order = topological_sort(graph)
    position = {v: i for i, v in enumerate(order)}
    # descendants[v]: vertices reachable from v via paths of length >= 1
    descendants: dict[Vertex, set[Vertex]] = {v: set() for v in graph.vertices()}
    reduced_edges: list[tuple[Vertex, Vertex]] = []
    for v in reversed(order):
        succs = sorted(graph.successors(v), key=lambda w: position[w])
        kept: list[Vertex] = []
        reach_from_kept: set[Vertex] = set()
        for w in succs:
            if w in reach_from_kept:
                continue  # w reachable through an already-kept successor
            kept.append(w)
            reach_from_kept.add(w)
            reach_from_kept |= descendants[w]
        for w in kept:
            reduced_edges.append((v, w))
        descendants[v] = reach_from_kept
    reduction = DiGraph()
    for v in graph.vertices():
        reduction.add_vertex(v, width=graph.vertex_width(v), label=graph.vertex_label(v))
    reduction.add_edges(reduced_edges)
    return reduction


def union(a: DiGraph, b: DiGraph) -> DiGraph:
    """Disjoint-aware union: vertices/edges of both graphs (attributes from *b* win on clashes)."""
    out = a.copy()
    for v in b.vertices():
        out.add_vertex(v, width=b.vertex_width(v), label=b.vertex_label(v))
    for u, v in b.edges():
        if not out.has_edge(u, v):
            out.add_edge(u, v)
    return out
