"""Directed-graph substrate used by every layering algorithm in the library.

The central class is :class:`repro.graph.digraph.DiGraph`, a small
insertion-ordered adjacency-list digraph with per-vertex drawing attributes
(width, label).  It is deliberately independent of :mod:`networkx` — the
layering and ACO code paths only ever touch this class — but conversion
helpers are provided in :mod:`repro.graph.io` so users can move graphs in and
out of the wider Python graph ecosystem.

Submodules
----------
``digraph``
    The :class:`DiGraph` container itself.
``acyclicity``
    Topological sorting, cycle detection and greedy feedback-arc-set cycle
    removal (the "step 0" of the Sugiyama framework).
``generators``
    Random and structured DAG generators, including the sparse generator used
    to build the synthetic AT&T-like benchmark corpus.
``transforms``
    Structural transforms: reverse, condensation, transitive closure and
    reduction, induced subgraphs, relabeling.
``io``
    Plain-text and JSON serialisation plus networkx interop.
``validation``
    Invariant checks shared by tests and algorithms.
"""

from repro.graph.acyclicity import (
    feedback_arc_set,
    find_cycle,
    is_acyclic,
    make_acyclic,
    topological_sort,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    att_like_dag,
    gnp_dag,
    layered_random_dag,
    longest_path_dag,
    random_binary_tree_dag,
    random_tree_dag,
    series_parallel_dag,
)
from repro.graph.io import (
    from_networkx,
    read_edgelist,
    to_networkx,
    write_dot,
    write_edgelist,
)
from repro.graph.transforms import (
    condensation,
    induced_subgraph,
    relabel,
    reverse,
    transitive_closure,
    transitive_reduction,
)

__all__ = [
    "DiGraph",
    # acyclicity
    "topological_sort",
    "is_acyclic",
    "find_cycle",
    "feedback_arc_set",
    "make_acyclic",
    # generators
    "gnp_dag",
    "layered_random_dag",
    "random_tree_dag",
    "random_binary_tree_dag",
    "series_parallel_dag",
    "longest_path_dag",
    "att_like_dag",
    # io
    "to_networkx",
    "from_networkx",
    "read_edgelist",
    "write_edgelist",
    "write_dot",
    # transforms
    "reverse",
    "condensation",
    "transitive_closure",
    "transitive_reduction",
    "induced_subgraph",
    "relabel",
]
