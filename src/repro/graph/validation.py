"""Structural invariant checks shared by tests and algorithm entry points.

The checks raise :class:`repro.utils.exceptions.ValidationError` (for bad
parameters) or :class:`GraphError`/:class:`CycleError` (for structural
problems) with actionable messages; the ``require_*`` helpers are meant to be
called at the top of public algorithm functions so user errors surface early
rather than as index errors deep inside a heuristic.
"""

from __future__ import annotations

from repro.graph.acyclicity import find_cycle, is_acyclic
from repro.graph.digraph import DiGraph
from repro.utils.exceptions import CycleError, GraphError

__all__ = [
    "require_dag",
    "require_nonempty",
    "check_consistency",
]


def require_nonempty(graph: DiGraph) -> None:
    """Raise :class:`GraphError` when *graph* has no vertices."""
    if graph.n_vertices == 0:
        raise GraphError("operation requires a graph with at least one vertex")


def require_dag(graph: DiGraph) -> None:
    """Raise :class:`CycleError` (with a witness cycle) when *graph* is cyclic."""
    if not is_acyclic(graph):
        raise CycleError(
            "operation requires an acyclic graph; "
            "use repro.graph.make_acyclic or repro.graph.condensation first",
            cycle=find_cycle(graph),
        )


def check_consistency(graph: DiGraph) -> None:
    """Verify the internal successor/predecessor mirrors agree.

    This is an internal-integrity check used by property-based tests after
    random mutation sequences; it raises :class:`GraphError` on any mismatch.
    """
    succ_edges = {(u, v) for u in graph.vertices() for v in graph.successors(u)}
    pred_edges = {(u, v) for v in graph.vertices() for u in graph.predecessors(v)}
    if succ_edges != pred_edges:
        missing = succ_edges.symmetric_difference(pred_edges)
        raise GraphError(f"successor/predecessor adjacency mismatch on edges: {sorted(map(repr, missing))}")
    for u, v in succ_edges:
        if not graph.has_vertex(u) or not graph.has_vertex(v):
            raise GraphError(f"edge {(u, v)!r} references a vertex missing from the vertex set")
