"""An insertion-ordered adjacency-list directed graph with drawing attributes.

The DAG layering problem cares about two per-vertex attributes beyond the
structure of the graph: the *width* of the rectangle enclosing the vertex
(paper, Section II: "the width of a vertex is the width of the rectangle
enclosing the vertex"; vertices with no label default to width one) and an
optional human-readable *label*.  :class:`DiGraph` stores both and exposes the
neighbourhood queries (``predecessors``/``successors``/degrees) that the
layering algorithms in :mod:`repro.layering` and the ants in :mod:`repro.aco`
issue millions of times, so the representation is kept to plain dictionaries
of insertion-ordered sets for predictable, allocation-free iteration.

Vertices may be any hashable object.  Iteration order over vertices and edges
is insertion order, which keeps every algorithm in the library deterministic
for a given construction sequence and seed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.utils.exceptions import GraphError

Vertex = Hashable

__all__ = ["DiGraph", "Vertex"]

DEFAULT_VERTEX_WIDTH = 1.0


class DiGraph:
    """A simple directed graph (no parallel edges, no self-loops by default).

    Parameters
    ----------
    vertices:
        Optional iterable of vertices to add up front.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints not already present
        are added automatically with default attributes.
    allow_self_loops:
        When ``False`` (the default, and the only mode meaningful for DAG
        layering) adding an edge ``(v, v)`` raises :class:`GraphError`.

    Examples
    --------
    >>> g = DiGraph(edges=[("a", "b"), ("b", "c")])
    >>> sorted(g.vertices())
    ['a', 'b', 'c']
    >>> g.out_degree("a"), g.in_degree("c")
    (1, 1)
    """

    __slots__ = ("_succ", "_pred", "_width", "_label", "allow_self_loops")

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[tuple[Vertex, Vertex]] | None = None,
        *,
        allow_self_loops: bool = False,
    ) -> None:
        # vertex -> dict used as an ordered set of neighbours
        self._succ: dict[Vertex, dict[Vertex, None]] = {}
        self._pred: dict[Vertex, dict[Vertex, None]] = {}
        self._width: dict[Vertex, float] = {}
        self._label: dict[Vertex, str | None] = {}
        self.allow_self_loops = allow_self_loops
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #

    def add_vertex(
        self,
        v: Vertex,
        *,
        width: float = DEFAULT_VERTEX_WIDTH,
        label: str | None = None,
    ) -> None:
        """Add vertex *v*; updating attributes if it already exists.

        ``width`` must be strictly positive — a zero-width real vertex would
        make the layering width metric degenerate.
        """
        if width <= 0:
            raise GraphError(f"vertex width must be positive, got {width!r} for {v!r}")
        if v not in self._succ:
            self._succ[v] = {}
            self._pred[v] = {}
        self._width[v] = float(width)
        self._label[v] = label

    def add_vertices(self, vs: Iterable[Vertex]) -> None:
        """Add every vertex in *vs* with default attributes."""
        for v in vs:
            if v not in self._succ:
                self.add_vertex(v)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the directed edge ``u -> v`` (adding missing endpoints).

        Adding an existing edge is a silent no-op; self-loops raise unless
        the graph was created with ``allow_self_loops=True``.
        """
        if u == v and not self.allow_self_loops:
            raise GraphError(f"self-loop {u!r}->{v!r} not allowed")
        if u not in self._succ:
            self.add_vertex(u)
        if v not in self._succ:
            self.add_vertex(v)
        self._succ[u][v] = None
        self._pred[v][u] = None

    def add_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> None:
        """Add every edge in *edges*."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``u -> v``; raise :class:`GraphError` if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge {u!r}->{v!r} not in graph")
        del self._succ[u][v]
        del self._pred[v][u]

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex *v* and every incident edge."""
        if v not in self._succ:
            raise GraphError(f"vertex {v!r} not in graph")
        for w in list(self._succ[v]):
            del self._pred[w][v]
        for u in list(self._pred[v]):
            del self._succ[u][v]
        del self._succ[v]
        del self._pred[v]
        del self._width[v]
        del self._label[v]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` if *v* is a vertex of the graph."""
        return v in self._succ

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if ``u -> v`` is an edge of the graph."""
        return u in self._succ and v in self._succ[u]

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices in insertion order."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        """Iterate over edges ``(u, v)`` grouped by source, in insertion order."""
        for u, nbrs in self._succ.items():
            for v in nbrs:
                yield (u, v)

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self._succ)

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return sum(len(nbrs) for nbrs in self._succ.values())

    def successors(self, v: Vertex) -> list[Vertex]:
        """Immediate successors of *v* (the set ``N+(v)`` of the paper)."""
        self._check_vertex(v)
        return list(self._succ[v])

    def predecessors(self, v: Vertex) -> list[Vertex]:
        """Immediate predecessors of *v* (the set ``N-(v)`` of the paper)."""
        self._check_vertex(v)
        return list(self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        """Number of outgoing edges of *v*."""
        self._check_vertex(v)
        return len(self._succ[v])

    def in_degree(self, v: Vertex) -> int:
        """Number of incoming edges of *v*."""
        self._check_vertex(v)
        return len(self._pred[v])

    def degree(self, v: Vertex) -> int:
        """Total degree (in + out) of *v*."""
        return self.in_degree(v) + self.out_degree(v)

    def sources(self) -> list[Vertex]:
        """Vertices with no incoming edges."""
        return [v for v in self._succ if not self._pred[v]]

    def sinks(self) -> list[Vertex]:
        """Vertices with no outgoing edges."""
        return [v for v in self._succ if not self._succ[v]]

    def isolated_vertices(self) -> list[Vertex]:
        """Vertices with neither incoming nor outgoing edges."""
        return [v for v in self._succ if not self._succ[v] and not self._pred[v]]

    # ------------------------------------------------------------------ #
    # attributes
    # ------------------------------------------------------------------ #

    def vertex_width(self, v: Vertex) -> float:
        """Drawing width of vertex *v* (defaults to 1.0)."""
        self._check_vertex(v)
        return self._width[v]

    def set_vertex_width(self, v: Vertex, width: float) -> None:
        """Set the drawing width of vertex *v* (must be positive)."""
        self._check_vertex(v)
        if width <= 0:
            raise GraphError(f"vertex width must be positive, got {width!r} for {v!r}")
        self._width[v] = float(width)

    def vertex_widths(self) -> Mapping[Vertex, float]:
        """A read-only view of the vertex-width mapping."""
        return dict(self._width)

    def vertex_label(self, v: Vertex) -> str | None:
        """Label of vertex *v* (``None`` if unset)."""
        self._check_vertex(v)
        return self._label[v]

    def set_vertex_label(self, v: Vertex, label: str | None) -> None:
        """Set the label of vertex *v*."""
        self._check_vertex(v)
        self._label[v] = label

    def total_vertex_width(self) -> float:
        """Sum of all real-vertex widths (an upper bound on any layer's real width)."""
        return sum(self._width.values())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def copy(self) -> "DiGraph":
        """Return an independent deep copy (attributes included)."""
        g = DiGraph(allow_self_loops=self.allow_self_loops)
        for v in self._succ:
            g.add_vertex(v, width=self._width[v], label=self._label[v])
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def reverse(self) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        g = DiGraph(allow_self_loops=self.allow_self_loops)
        for v in self._succ:
            g.add_vertex(v, width=self._width[v], label=self._label[v])
        for u, v in self.edges():
            g.add_edge(v, u)
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> "DiGraph":
        """Return the subgraph induced by the vertices in *keep*."""
        keep_set = set(keep)
        missing = keep_set - set(self._succ)
        if missing:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, missing))}")
        g = DiGraph(allow_self_loops=self.allow_self_loops)
        for v in self._succ:
            if v in keep_set:
                g.add_vertex(v, width=self._width[v], label=self._label[v])
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self._succ:
            raise GraphError(f"vertex {v!r} not in graph")

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same vertex set, edge set, widths and labels."""
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            set(self._succ) == set(other._succ)
            and set(self.edges()) == set(other.edges())
            and self._width == other._width
            and self._label == other._label
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges})"
        )
