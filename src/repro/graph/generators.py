"""Random and structured DAG generators.

The paper evaluates on 1277 AT&T graphs from graphdrawing.org grouped by
vertex count (10 to 100, step 5).  That corpus is not redistributable, so the
benchmark harness uses :func:`att_like_dag` — a sparse random-DAG generator
whose edge count scales like the published statistics of the AT&T/Rome
collections (|E| roughly 1.3–1.6·|V|, small in/out degrees, a handful of
sources and sinks).  The remaining generators produce structured families
(trees, series-parallel graphs, long paths, layered random DAGs) that are used
by tests, examples and the ablation benchmarks.

Every generator takes an explicit ``seed`` (or generator) and is fully
deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.exceptions import ValidationError
from repro.utils.rng import as_generator

__all__ = [
    "gnp_dag",
    "layered_random_dag",
    "random_tree_dag",
    "random_binary_tree_dag",
    "series_parallel_dag",
    "longest_path_dag",
    "att_like_dag",
    "complete_layered_dag",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ValidationError(f"number of vertices must be >= 1, got {n}")


def gnp_dag(n: int, p: float, *, seed: int | None | np.random.Generator = None) -> DiGraph:
    """Erdős–Rényi style random DAG.

    Vertices are ``0..n-1``; each pair ``(i, j)`` with ``i < j`` becomes the
    edge ``i -> j`` independently with probability *p*.  Orienting edges from
    the smaller to the larger index guarantees acyclicity.

    Parameters
    ----------
    n: number of vertices (>= 1).
    p: edge probability in ``[0, 1]``.
    seed: RNG seed or generator.
    """
    _check_n(n)
    if not 0.0 <= p <= 1.0:
        raise ValidationError(f"edge probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    g = DiGraph(vertices=range(n))
    if n == 1:
        return g
    # Vectorised draw over the upper triangle.
    upper = np.triu_indices(n, k=1)
    mask = rng.random(len(upper[0])) < p
    for i, j in zip(upper[0][mask], upper[1][mask]):
        g.add_edge(int(i), int(j))
    return g


def layered_random_dag(
    n_layers: int,
    layer_size: int,
    p: float,
    *,
    max_span: int = 3,
    seed: int | None | np.random.Generator = None,
    engine: str = "vectorized",
) -> DiGraph:
    """Random DAG with a planted layered structure.

    ``n_layers`` layers of ``layer_size`` vertices each; an edge from a vertex
    on layer ``i`` to a vertex on layer ``j < i`` (spans up to *max_span*) is
    added with probability *p*.  Useful for tests where a "natural" layering
    of known height exists.

    The default ``engine="vectorized"`` draws one uniform block per layer
    pair instead of one scalar per vertex pair; ``numpy``'s
    ``Generator.random(n)`` produces the same doubles as ``n`` successive
    scalar draws, so the generated graph is **identical** to the per-pair
    reference (``engine="python"``) for any fixed seed.
    """
    if n_layers < 1 or layer_size < 1:
        raise ValidationError("n_layers and layer_size must both be >= 1")
    if not 0.0 <= p <= 1.0:
        raise ValidationError(f"edge probability must be in [0, 1], got {p}")
    if max_span < 1:
        raise ValidationError(f"max_span must be >= 1, got {max_span}")
    if engine not in ("vectorized", "python"):
        raise ValidationError(
            f"engine must be 'vectorized' or 'python', got {engine!r}"
        )
    rng = as_generator(seed)
    g = DiGraph()
    layers: list[list[int]] = []
    vid = 0
    for _ in range(n_layers):
        layer = list(range(vid, vid + layer_size))
        for v in layer:
            g.add_vertex(v)
        layers.append(layer)
        vid += layer_size
    # Layers are indexed bottom-up like the paper: edges go from a higher
    # layer index to a lower one.
    for hi in range(1, n_layers):
        for lo in range(max(0, hi - max_span), hi):
            if engine == "vectorized":
                # One block draw per layer pair, flattened in the same
                # (u outer, v inner) order the scalar loop consumes.
                mask = rng.random(layer_size * layer_size) < p
                base_u = layers[hi][0]
                base_v = layers[lo][0]
                for flat in np.flatnonzero(mask):
                    g.add_edge(
                        base_u + int(flat) // layer_size,
                        base_v + int(flat) % layer_size,
                    )
            else:
                for u in layers[hi]:
                    for v in layers[lo]:
                        if rng.random() < p:
                            g.add_edge(u, v)
    return g


def random_tree_dag(
    n: int, *, max_children: int = 4, seed: int | None | np.random.Generator = None
) -> DiGraph:
    """Random rooted tree with edges directed from parent to child.

    Each new vertex picks a uniformly random existing vertex with fewer than
    *max_children* children as its parent (falling back to any vertex when all
    are saturated), producing shallow, bushy DAGs resembling call trees.
    """
    _check_n(n)
    if max_children < 1:
        raise ValidationError(f"max_children must be >= 1, got {max_children}")
    rng = as_generator(seed)
    g = DiGraph(vertices=[0])
    children_count = {0: 0}
    for v in range(1, n):
        candidates = [u for u, c in children_count.items() if c < max_children]
        if not candidates:
            candidates = list(children_count)
        parent = int(candidates[rng.integers(0, len(candidates))])
        g.add_vertex(v)
        g.add_edge(parent, v)
        children_count[parent] = children_count.get(parent, 0) + 1
        children_count[v] = 0
    return g


def random_binary_tree_dag(depth: int) -> DiGraph:
    """Complete binary tree of the given depth, edges from parent to child.

    ``depth=0`` is a single vertex.  Vertex ids follow the usual heap
    numbering (root 0, children of ``i`` are ``2i+1`` and ``2i+2``).
    """
    if depth < 0:
        raise ValidationError(f"depth must be >= 0, got {depth}")
    n = 2 ** (depth + 1) - 1
    g = DiGraph(vertices=range(n))
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                g.add_edge(i, child)
    return g


def series_parallel_dag(
    n_operations: int, *, seed: int | None | np.random.Generator = None
) -> DiGraph:
    """Random two-terminal series-parallel DAG.

    Starts from a single edge ``source -> sink`` and applies *n_operations*
    random series or parallel compositions: a series step subdivides a random
    edge with a new vertex; a parallel step duplicates a random edge through a
    new vertex (creating a diamond).  Series-parallel DAGs are the classic
    worst case for dummy-vertex blow-up, which is why they appear in the
    ablation benchmarks.
    """
    if n_operations < 0:
        raise ValidationError(f"n_operations must be >= 0, got {n_operations}")
    rng = as_generator(seed)
    g = DiGraph(edges=[(0, 1)])
    next_id = 2
    for _ in range(n_operations):
        edges = list(g.edges())
        u, v = edges[rng.integers(0, len(edges))]
        w = next_id
        next_id += 1
        g.add_vertex(w)
        if rng.random() < 0.5:
            # series: u -> w -> v replaces u -> v
            g.remove_edge(u, v)
            g.add_edge(u, w)
            g.add_edge(w, v)
        else:
            # parallel: add a second path u -> w -> v alongside u -> v
            g.add_edge(u, w)
            g.add_edge(w, v)
    return g


def longest_path_dag(n: int) -> DiGraph:
    """A simple path ``0 -> 1 -> ... -> n-1`` (height-maximising worst case)."""
    _check_n(n)
    g = DiGraph(vertices=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def complete_layered_dag(n_layers: int, layer_size: int) -> DiGraph:
    """Complete bipartite connections between consecutive layers (dense stress test)."""
    if n_layers < 1 or layer_size < 1:
        raise ValidationError("n_layers and layer_size must both be >= 1")
    g = DiGraph()
    layers = []
    vid = 0
    for _ in range(n_layers):
        layer = list(range(vid, vid + layer_size))
        for v in layer:
            g.add_vertex(v)
        layers.append(layer)
        vid += layer_size
    for i in range(1, n_layers):
        for u in layers[i]:
            for v in layers[i - 1]:
                g.add_edge(u, v)
    return g


def att_like_dag(
    n: int,
    *,
    edge_factor: float = 1.4,
    edge_factor_jitter: float = 0.15,
    depth_ratio: float = 0.55,
    depth_exponent: float = 0.3,
    span_decay: float = 0.35,
    seed: int | None | np.random.Generator = None,
) -> DiGraph:
    """Sparse, shallow random DAG statistically similar to the AT&T graph-drawing corpus.

    The AT&T digraphs used by the paper's evaluation (and by the wider graph
    drawing literature) are small, sparse (|E| ≈ 1.3–1.6 · |V|) and *shallow*:
    their longest directed paths are short relative to the vertex count, so a
    Longest-Path Layering is only a handful of layers tall but very wide,
    while width-oriented heuristics stack the same graphs into tall, narrow
    layerings.  This generator reproduces those characteristics:

    1.  Every vertex gets a *depth* drawn from a truncated geometric
        distribution with ratio *depth_ratio*, bounded by
        ``max(2, round(1.5 · n^depth_exponent))`` levels — for example ≈ 3
        levels at 10 vertices and ≈ 6 levels at 100 vertices.  Depth 0
        vertices are the (numerous) sinks.
    2.  Each vertex of depth ``d > 0`` receives one edge to a random vertex of
        depth ``d − 1``, which pins its longest-path length to exactly ``d``.
    3.  Additional edges are sampled until the jittered target
        ``m ≈ edge_factor · n`` is reached, each going from a vertex of depth
        ``d`` to a vertex of strictly smaller depth, with the depth gap drawn
        from a geometric distribution (*span_decay*) so most extra edges are
        short and only a few span several levels — keeping dummy-vertex
        counts low, as observed for the real corpus.

    Parameters
    ----------
    n: number of vertices.
    edge_factor: target ratio |E| / |V|.
    edge_factor_jitter: uniform jitter applied to *edge_factor* per graph.
    depth_ratio: geometric ratio of the depth distribution (smaller = shallower).
    depth_exponent: growth exponent of the number of depth levels with *n*.
    span_decay: geometric parameter for the depth gap of the extra edges.
    seed: RNG seed or generator.
    """
    _check_n(n)
    if edge_factor < 0:
        raise ValidationError(f"edge_factor must be >= 0, got {edge_factor}")
    if not 0.0 < depth_ratio < 1.0:
        raise ValidationError(f"depth_ratio must be in (0, 1), got {depth_ratio}")
    if not 0.0 < span_decay <= 1.0:
        raise ValidationError(f"span_decay must be in (0, 1], got {span_decay}")
    rng = as_generator(seed)
    g = DiGraph(vertices=range(n))
    if n == 1:
        return g

    n_levels = max(2, int(round(1.5 * n**depth_exponent)))
    n_levels = min(n_levels, n)

    # --- 1. depths from a truncated geometric distribution ----------------- #
    level_probs = depth_ratio ** np.arange(n_levels)
    level_probs /= level_probs.sum()
    depths = rng.choice(n_levels, size=n, p=level_probs)
    # Guarantee every level up to the drawn maximum is populated so the
    # longest path really has max(depths) + 1 vertices.
    max_depth = int(depths.max())
    for d in range(max_depth + 1):
        if not np.any(depths == d):
            depths[int(rng.integers(0, n))] = d
    by_depth: dict[int, list[int]] = {d: [] for d in range(int(depths.max()) + 1)}
    for v in range(n):
        by_depth[int(depths[v])].append(v)

    # --- 2. backbone: one adjacent-level edge per non-sink vertex ---------- #
    edges: set[tuple[int, int]] = set()
    for v in range(n):
        d = int(depths[v])
        if d == 0:
            continue
        targets = by_depth[d - 1]
        w = int(targets[rng.integers(0, len(targets))])
        edges.add((v, w))

    # --- 3. extra edges until the target edge count is reached ------------- #
    factor = edge_factor + rng.uniform(-edge_factor_jitter, edge_factor_jitter)
    target_m = max(len(edges), int(round(factor * n)))
    non_sinks = [v for v in range(n) if depths[v] > 0]
    attempts = 0
    max_attempts = 60 * target_m + 100
    while len(edges) < target_m and attempts < max_attempts and non_sinks:
        attempts += 1
        u = int(non_sinks[rng.integers(0, len(non_sinks))])
        du = int(depths[u])
        gap = 1 + int(rng.geometric(1.0 - span_decay)) - 1  # geometric on {1, 2, ...}
        gap = min(max(gap, 1), du)
        targets = by_depth[du - gap]
        v = int(targets[rng.integers(0, len(targets))])
        if u != v:
            edges.add((u, v))

    for u, v in sorted(edges):
        g.add_edge(u, v)
    return g
