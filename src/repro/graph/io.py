"""Graph serialisation and interoperability helpers.

Formats
-------
* **edge list** — one ``u v`` pair per line, ``#``-prefixed comments, plus an
  optional header block carrying vertex attributes.  This is the format used
  to snapshot corpus graphs on disk.
* **JSON** — a dictionary with explicit vertex/edge/attribute lists; round
  trips every attribute.
* **DOT** — write-only, for eyeballing graphs in Graphviz.
* **networkx** — conversion in both directions (``width``/``label`` become
  node attributes) so the wider ecosystem of generators and analysis tools is
  one call away.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

import networkx as nx

from repro.graph.digraph import DEFAULT_VERTEX_WIDTH, DiGraph
from repro.utils.exceptions import GraphError

__all__ = [
    "to_networkx",
    "from_networkx",
    "write_edgelist",
    "read_edgelist",
    "to_json_dict",
    "from_json_dict",
    "write_json",
    "read_json",
    "write_dot",
]


# --------------------------------------------------------------------------- #
# networkx interop
# --------------------------------------------------------------------------- #


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    """Convert to :class:`networkx.DiGraph`, carrying ``width`` and ``label`` node attrs."""
    g = nx.DiGraph()
    for v in graph.vertices():
        g.add_node(v, width=graph.vertex_width(v), label=graph.vertex_label(v))
    g.add_edges_from(graph.edges())
    return g


def from_networkx(g: nx.DiGraph) -> DiGraph:
    """Convert from :class:`networkx.DiGraph` (or ``MultiDiGraph``; parallel edges collapse).

    Node attributes ``width`` and ``label`` are honoured when present.
    """
    if not g.is_directed():
        raise GraphError("from_networkx expects a directed networkx graph")
    out = DiGraph()
    for v, data in g.nodes(data=True):
        out.add_vertex(
            v,
            width=float(data.get("width", DEFAULT_VERTEX_WIDTH)),
            label=data.get("label"),
        )
    for u, v in g.edges():
        if u == v:
            continue
        if not out.has_edge(u, v):
            out.add_edge(u, v)
    return out


# --------------------------------------------------------------------------- #
# edge-list format
# --------------------------------------------------------------------------- #

# Whitespace is what separates the fields of a record, so any whitespace
# *inside* an id or label must be escaped — the previous writer emitted it
# raw, which silently corrupted the read-back (``read_edgelist`` took only
# the first whitespace-delimited token of a label).  The escapes must cover
# *every* character ``str.isspace()`` accepts (``str.split`` and
# ``str.splitlines`` honour Unicode whitespace such as NBSP or U+2028, not
# just ASCII), so anything spacey without a one-letter escape becomes a
# ``\\uXXXX`` / ``\\UXXXXXXXX`` code-point escape.  Backslash is escaped to
# keep the scheme reversible, and a label consisting of the single character
# ``-`` is written ``\\-`` to distinguish it from the ``-`` placeholder
# meaning "no label", and an empty string is written ``\\e`` so the field
# does not vanish from the record.
_FIELD_ESCAPES = {"\\": "\\\\", " ": "\\s", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_FIELD_UNESCAPES = {"\\": "\\", "s": " ", "t": "\t", "n": "\n", "r": "\r", "-": "-", "e": ""}


def _escape_field(text: str) -> str:
    if text == "-":
        return "\\-"
    if text == "":
        return "\\e"
    out: list[str] = []
    for ch in text:
        if ch in _FIELD_ESCAPES:
            out.append(_FIELD_ESCAPES[ch])
        elif ch.isspace():
            code = ord(ch)
            out.append(f"\\u{code:04x}" if code <= 0xFFFF else f"\\U{code:08x}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape_field(token: str, context: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(token):
        ch = token[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(token):
            raise GraphError(f"{context}: invalid escape in field {token!r}")
        kind = token[i + 1]
        if kind in _FIELD_UNESCAPES:
            out.append(_FIELD_UNESCAPES[kind])
            i += 2
        elif kind in ("u", "U"):
            width = 4 if kind == "u" else 8
            digits = token[i + 2 : i + 2 + width]
            if len(digits) != width:
                raise GraphError(f"{context}: invalid escape in field {token!r}")
            try:
                out.append(chr(int(digits, 16)))
            except ValueError:
                raise GraphError(f"{context}: invalid escape in field {token!r}") from None
            i += 2 + width
        else:
            raise GraphError(f"{context}: invalid escape in field {token!r}")
    return "".join(out)


def write_edgelist(graph: DiGraph, path: str | Path) -> None:
    """Write *graph* as a plain-text edge list with a vertex-attribute header.

    Format::

        # repro edgelist v1
        V <vertex> <width> <label-or-`-`>
        ...
        E <u> <v>
        ...

    Vertex names are written with ``str()``; reading back therefore yields
    string vertex ids (documented behaviour, matching common edge-list tools).
    Whitespace and backslashes inside ids and labels are escaped (``\\s``,
    ``\\t``, ``\\n``, ``\\r``, ``\\\\``; a literal ``-`` label is written
    ``\\-``), so ``write -> read`` preserves them instead of corrupting the
    fields; files written before the escaping existed read back unchanged as
    long as their fields contained no backslash.
    """
    path = Path(path)
    lines = ["# repro edgelist v1"]
    for v in graph.vertices():
        label = graph.vertex_label(v)
        encoded_label = "-" if label is None else _escape_field(label)
        lines.append(
            f"V {_escape_field(str(v))} {graph.vertex_width(v)} {encoded_label}"
        )
    for u, v in graph.edges():
        lines.append(f"E {_escape_field(str(u))} {_escape_field(str(v))}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edgelist(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`write_edgelist` (vertex ids become strings)."""
    path = Path(path)
    g = DiGraph()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        context = f"{path}:{lineno}"
        if parts[0] == "V":
            if len(parts) < 3 or len(parts) > 4:
                raise GraphError(f"{context}: malformed vertex line {raw!r}")
            label = (
                None
                if len(parts) < 4 or parts[3] == "-"
                else _unescape_field(parts[3], context)
            )
            g.add_vertex(
                _unescape_field(parts[1], context), width=float(parts[2]), label=label
            )
        elif parts[0] == "E":
            if len(parts) != 3:
                raise GraphError(f"{context}: malformed edge line {raw!r}")
            g.add_edge(
                _unescape_field(parts[1], context), _unescape_field(parts[2], context)
            )
        else:
            raise GraphError(f"{context}: unknown record type {parts[0]!r}")
    return g


# --------------------------------------------------------------------------- #
# JSON format
# --------------------------------------------------------------------------- #


def to_json_dict(graph: DiGraph) -> dict[str, Any]:
    """Return a JSON-serialisable dictionary representation of *graph*."""
    return {
        "format": "repro-digraph",
        "version": 1,
        "vertices": [
            {"id": v, "width": graph.vertex_width(v), "label": graph.vertex_label(v)}
            for v in graph.vertices()
        ],
        "edges": [[u, v] for u, v in graph.edges()],
    }


def from_json_dict(data: dict[str, Any]) -> DiGraph:
    """Rebuild a graph from :func:`to_json_dict` output."""
    if data.get("format") != "repro-digraph":
        raise GraphError(f"not a repro-digraph JSON document: format={data.get('format')!r}")
    g = DiGraph()
    for rec in data["vertices"]:
        vid = rec["id"]
        # JSON keys round-trip lists to lists; vertex ids must stay hashable.
        if isinstance(vid, list):
            vid = tuple(vid)
        g.add_vertex(vid, width=float(rec.get("width", DEFAULT_VERTEX_WIDTH)), label=rec.get("label"))
    for u, v in data["edges"]:
        if isinstance(u, list):
            u = tuple(u)
        if isinstance(v, list):
            v = tuple(v)
        g.add_edge(u, v)
    return g


def write_json(graph: DiGraph, path: str | Path) -> None:
    """Serialise *graph* to a JSON file."""
    Path(path).write_text(json.dumps(to_json_dict(graph), indent=2), encoding="utf-8")


def read_json(path: str | Path) -> DiGraph:
    """Load a graph from a JSON file produced by :func:`write_json`."""
    return from_json_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# --------------------------------------------------------------------------- #
# DOT (write-only)
# --------------------------------------------------------------------------- #


def _dot_quote(value: Any) -> str:
    """Quote a string per the DOT grammar.

    Inside a double-quoted DOT ID only ``"`` needs escaping, but a trailing
    backslash (or any backslash sequence Graphviz treats as an escape) would
    change meaning or break the closing quote, so backslashes are escaped
    too; newlines become the ``\\n`` escape Graphviz renders as a line break.
    """
    escaped = (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\r\n", "\\n")
        .replace("\n", "\\n")
        .replace("\r", "\\n")
    )
    return f'"{escaped}"'


#: Words the DOT grammar reserves (case-insensitively); they must be quoted
#: even though they look like legal bare identifiers.
_DOT_KEYWORDS = frozenset({"graph", "digraph", "subgraph", "node", "edge", "strict"})


def _dot_id(value: str) -> str:
    """A DOT ID: bare when it is a legal bare identifier, quoted otherwise."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", value) and value.lower() not in _DOT_KEYWORDS:
        return value
    return _dot_quote(value)


def write_dot(graph: DiGraph, path: str | Path, *, name: str = "G") -> None:
    """Write a Graphviz DOT representation (labels and widths become attributes).

    Vertex ids, labels and the graph *name* are quoted and escaped per the
    DOT grammar, so ids or labels containing ``"``, backslashes or newlines
    produce well-formed output.
    """
    lines = [f"digraph {_dot_id(name)} {{"]
    for v in graph.vertices():
        label = graph.vertex_label(v)
        attrs = [f'width="{graph.vertex_width(v)}"']
        if label is not None:
            attrs.append(f"label={_dot_quote(label)}")
        lines.append(f'  {_dot_quote(v)} [{", ".join(attrs)}];')
    for u, v in graph.edges():
        lines.append(f"  {_dot_quote(u)} -> {_dot_quote(v)};")
    lines.append("}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
