"""Graph serialisation and interoperability helpers.

Formats
-------
* **edge list** — one ``u v`` pair per line, ``#``-prefixed comments, plus an
  optional header block carrying vertex attributes.  This is the format used
  to snapshot corpus graphs on disk.
* **JSON** — a dictionary with explicit vertex/edge/attribute lists; round
  trips every attribute.
* **DOT** — write-only, for eyeballing graphs in Graphviz.
* **networkx** — conversion in both directions (``width``/``label`` become
  node attributes) so the wider ecosystem of generators and analysis tools is
  one call away.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import networkx as nx

from repro.graph.digraph import DEFAULT_VERTEX_WIDTH, DiGraph
from repro.utils.exceptions import GraphError

__all__ = [
    "to_networkx",
    "from_networkx",
    "write_edgelist",
    "read_edgelist",
    "to_json_dict",
    "from_json_dict",
    "write_json",
    "read_json",
    "write_dot",
]


# --------------------------------------------------------------------------- #
# networkx interop
# --------------------------------------------------------------------------- #


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    """Convert to :class:`networkx.DiGraph`, carrying ``width`` and ``label`` node attrs."""
    g = nx.DiGraph()
    for v in graph.vertices():
        g.add_node(v, width=graph.vertex_width(v), label=graph.vertex_label(v))
    g.add_edges_from(graph.edges())
    return g


def from_networkx(g: nx.DiGraph) -> DiGraph:
    """Convert from :class:`networkx.DiGraph` (or ``MultiDiGraph``; parallel edges collapse).

    Node attributes ``width`` and ``label`` are honoured when present.
    """
    if not g.is_directed():
        raise GraphError("from_networkx expects a directed networkx graph")
    out = DiGraph()
    for v, data in g.nodes(data=True):
        out.add_vertex(
            v,
            width=float(data.get("width", DEFAULT_VERTEX_WIDTH)),
            label=data.get("label"),
        )
    for u, v in g.edges():
        if u == v:
            continue
        if not out.has_edge(u, v):
            out.add_edge(u, v)
    return out


# --------------------------------------------------------------------------- #
# edge-list format
# --------------------------------------------------------------------------- #


def write_edgelist(graph: DiGraph, path: str | Path) -> None:
    """Write *graph* as a plain-text edge list with a vertex-attribute header.

    Format::

        # repro edgelist v1
        V <vertex> <width> <label-or-`-`>
        ...
        E <u> <v>
        ...

    Vertex names are written with ``str()``; reading back therefore yields
    string vertex ids (documented behaviour, matching common edge-list tools).
    """
    path = Path(path)
    lines = ["# repro edgelist v1"]
    for v in graph.vertices():
        label = graph.vertex_label(v)
        lines.append(f"V {v} {graph.vertex_width(v)} {label if label is not None else '-'}")
    for u, v in graph.edges():
        lines.append(f"E {u} {v}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edgelist(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`write_edgelist` (vertex ids become strings)."""
    path = Path(path)
    g = DiGraph()
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] == "V":
            if len(parts) < 3:
                raise GraphError(f"{path}:{lineno}: malformed vertex line {raw!r}")
            label = None if len(parts) < 4 or parts[3] == "-" else parts[3]
            g.add_vertex(parts[1], width=float(parts[2]), label=label)
        elif parts[0] == "E":
            if len(parts) != 3:
                raise GraphError(f"{path}:{lineno}: malformed edge line {raw!r}")
            g.add_edge(parts[1], parts[2])
        else:
            raise GraphError(f"{path}:{lineno}: unknown record type {parts[0]!r}")
    return g


# --------------------------------------------------------------------------- #
# JSON format
# --------------------------------------------------------------------------- #


def to_json_dict(graph: DiGraph) -> dict[str, Any]:
    """Return a JSON-serialisable dictionary representation of *graph*."""
    return {
        "format": "repro-digraph",
        "version": 1,
        "vertices": [
            {"id": v, "width": graph.vertex_width(v), "label": graph.vertex_label(v)}
            for v in graph.vertices()
        ],
        "edges": [[u, v] for u, v in graph.edges()],
    }


def from_json_dict(data: dict[str, Any]) -> DiGraph:
    """Rebuild a graph from :func:`to_json_dict` output."""
    if data.get("format") != "repro-digraph":
        raise GraphError(f"not a repro-digraph JSON document: format={data.get('format')!r}")
    g = DiGraph()
    for rec in data["vertices"]:
        vid = rec["id"]
        # JSON keys round-trip lists to lists; vertex ids must stay hashable.
        if isinstance(vid, list):
            vid = tuple(vid)
        g.add_vertex(vid, width=float(rec.get("width", DEFAULT_VERTEX_WIDTH)), label=rec.get("label"))
    for u, v in data["edges"]:
        if isinstance(u, list):
            u = tuple(u)
        if isinstance(v, list):
            v = tuple(v)
        g.add_edge(u, v)
    return g


def write_json(graph: DiGraph, path: str | Path) -> None:
    """Serialise *graph* to a JSON file."""
    Path(path).write_text(json.dumps(to_json_dict(graph), indent=2), encoding="utf-8")


def read_json(path: str | Path) -> DiGraph:
    """Load a graph from a JSON file produced by :func:`write_json`."""
    return from_json_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# --------------------------------------------------------------------------- #
# DOT (write-only)
# --------------------------------------------------------------------------- #


def write_dot(graph: DiGraph, path: str | Path, *, name: str = "G") -> None:
    """Write a Graphviz DOT representation (labels and widths become attributes)."""
    lines = [f"digraph {name} {{"]
    for v in graph.vertices():
        label = graph.vertex_label(v)
        attrs = [f'width="{graph.vertex_width(v)}"']
        if label is not None:
            attrs.append(f'label="{label}"')
        lines.append(f'  "{v}" [{", ".join(attrs)}];')
    for u, v in graph.edges():
        lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
