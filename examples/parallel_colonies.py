#!/usr/bin/env python
"""Run several independent ant colonies in parallel and keep the best layering.

Run with::

    python examples/parallel_colonies.py [n_colonies] [executor]

where ``executor`` is ``colonies`` (default: the shared-memory runtime —
one problem build, lockstep kernel calls across all colonies, zero-copy
process sharding on multi-core machines), ``process``, ``thread`` or
``serial``.  The script compares the single-colony result with the
portfolio result and reports the wall-clock time of each, demonstrating the
coarse-grained parallelisation that suits the algorithm on multi-core
machines.
"""

from __future__ import annotations

import sys
import time

from repro import ACOParams, aco_layering_detailed, att_like_dag, evaluate_layering
from repro.aco.parallel import parallel_aco_layering


def main() -> None:
    n_colonies = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    executor = sys.argv[2] if len(sys.argv) > 2 else "colonies"

    graph = att_like_dag(100, seed=123)
    params = ACOParams(n_ants=10, n_tours=10, seed=7)
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")
    print(f"portfolio: {n_colonies} colonies via the {executor!r} back end\n")

    start = time.perf_counter()
    single = aco_layering_detailed(graph, params)
    single_time = time.perf_counter() - start
    print(
        f"single colony : objective={single.metrics.objective:.4f} "
        f"height={single.metrics.height} width={single.metrics.width_including_dummies:.1f} "
        f"({single_time:.2f}s)"
    )

    start = time.perf_counter()
    portfolio = parallel_aco_layering(
        graph, params, n_colonies=n_colonies, executor=executor
    )
    portfolio_time = time.perf_counter() - start
    metrics = evaluate_layering(graph, portfolio.layering, nd_width=params.nd_width)
    print(
        f"{n_colonies}-colony best: objective={metrics.objective:.4f} "
        f"height={metrics.height} width={metrics.width_including_dummies:.1f} "
        f"({portfolio_time:.2f}s)"
    )
    print("\nper-colony objectives:")
    for colony in portfolio.colonies:
        marker = " <- best" if colony.colony_index == portfolio.best_colony.colony_index else ""
        print(f"  colony {colony.colony_index} (seed {colony.seed}): {colony.objective:.4f}{marker}")


if __name__ == "__main__":
    main()
