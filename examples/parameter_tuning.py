#!/usr/bin/env python
"""Reproduce the parameter-tuning study of Section VIII on a small corpus.

Run with::

    python examples/parameter_tuning.py [--full]

Two sweeps are performed, mirroring the paper:

* the pheromone/heuristic exponents α and β (paper: best at (3, 5), adopted
  (1, 3) for speed);
* the dummy-vertex width ``nd_width`` (paper: best at 1.1, adopted 1.0).

By default a coarse grid keeps the runtime to a couple of minutes; pass
``--full`` for the paper's complete grids.
"""

from __future__ import annotations

import sys

from repro.aco.params import ACOParams
from repro.datasets import att_like_corpus
from repro.experiments.reporting import format_sweep
from repro.experiments.tuning import alpha_beta_sweep, nd_width_sweep


def main() -> None:
    full = "--full" in sys.argv
    corpus = att_like_corpus(graphs_per_group=1, vertex_counts=(20, 40, 60))
    base = ACOParams(n_ants=10, n_tours=10, seed=0)

    alphas = (1, 2, 3, 4, 5) if full else (1, 3, 5)
    betas = (1, 2, 3, 4, 5) if full else (1, 3, 5)
    print(f"alpha/beta sweep over {len(alphas) * len(betas)} settings "
          f"on {len(corpus)} graphs ...")
    ab = alpha_beta_sweep(corpus, alphas=alphas, betas=betas, base_params=base)
    print(format_sweep(ab))
    best_a, best_b = ab.best().setting
    print(f"best setting: alpha={best_a:g}, beta={best_b:g} "
          f"(paper: best (3, 5), adopted (1, 3))\n")

    nd_widths = tuple(round(0.1 * i, 1) for i in range(1, 13)) if full else (0.1, 0.4, 0.7, 1.0, 1.2)
    print(f"nd_width sweep over {len(nd_widths)} settings ...")
    nd = nd_width_sweep(corpus, nd_widths=nd_widths, base_params=base)
    print(format_sweep(nd))
    print(f"best nd_width: {nd.best().setting[0]:g} (paper: best 1.1, adopted 1.0)")


if __name__ == "__main__":
    main()
