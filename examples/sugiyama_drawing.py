#!/usr/bin/env python
"""Draw a DAG end-to-end with the Sugiyama pipeline, once per layering method.

Run with::

    python examples/sugiyama_drawing.py [output_directory]

The script takes a (cyclic!) dependency-style digraph, runs the full pipeline
— cycle removal, layering, dummy insertion, crossing minimisation, coordinate
assignment — once with the Longest-Path layering and once with the Ant Colony
layering, prints both drawings as ASCII art and writes SVG files so the
width/height trade-off the paper optimises is directly visible.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import ACOParams, DiGraph, aco_layering
from repro.sugiyama import render_ascii, render_svg, sugiyama_layout


def build_module_dependency_graph() -> DiGraph:
    """A small, slightly cyclic 'module dependency' digraph with labelled vertices."""
    g = DiGraph()
    modules = {
        "app": 3.0,
        "api": 2.5,
        "auth": 2.0,
        "db": 2.0,
        "cache": 2.0,
        "models": 2.5,
        "utils": 2.0,
        "log": 1.5,
        "config": 2.0,
        "metrics": 2.5,
        "worker": 2.0,
        "queue": 2.0,
    }
    for name, width in modules.items():
        g.add_vertex(name, width=width, label=name)
    edges = [
        ("app", "api"), ("app", "auth"), ("app", "worker"), ("app", "config"),
        ("api", "models"), ("api", "auth"), ("api", "cache"),
        ("auth", "db"), ("auth", "utils"),
        ("models", "db"), ("models", "utils"),
        ("cache", "utils"), ("cache", "config"),
        ("worker", "queue"), ("worker", "models"), ("worker", "metrics"),
        ("queue", "db"),
        ("metrics", "log"), ("api", "log"), ("db", "log"),
        ("utils", "config"),
        # a deliberate cycle: metrics also feeds back into the app
        ("metrics", "app"),
    ]
    g.add_edges(edges)
    return g


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    graph = build_module_dependency_graph()
    aco = lambda g: aco_layering(g, ACOParams(seed=3))  # noqa: E731

    for name, method in (("lpl", "lpl"), ("ant-colony", aco)):
        drawing = sugiyama_layout(graph, layering_method=method)
        print(f"\n=== {name} layering ===")
        print(
            f"reversed edges (cycle removal): {drawing.reversed_edges}; "
            f"height={drawing.height}, width={drawing.width:.1f}, "
            f"crossings={drawing.crossings}"
        )
        print(render_ascii(drawing, columns=90))
        svg_path = out_dir / f"drawing_{name}.svg"
        render_svg(drawing, svg_path)
        print(f"SVG written to {svg_path}")


if __name__ == "__main__":
    main()
