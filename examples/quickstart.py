#!/usr/bin/env python
"""Quickstart: layer a DAG with the ACO algorithm and inspect the result.

Run with::

    python examples/quickstart.py

The script builds a small random DAG, layers it with the Ant Colony
Optimization algorithm of Andreev, Healy & Nikolov (IPPS 2007), compares the
outcome with the classic Longest-Path Layering, and prints both layer by
layer.
"""

from __future__ import annotations

from repro import (
    ACOParams,
    aco_layering_detailed,
    att_like_dag,
    evaluate_layering,
    longest_path_layering,
)


def describe(name: str, graph, layering) -> None:
    metrics = evaluate_layering(graph, layering)
    print(f"\n{name}")
    print(
        f"  height={metrics.height}  "
        f"width(incl. dummies)={metrics.width_including_dummies:.1f}  "
        f"width(excl. dummies)={metrics.width_excluding_dummies:.1f}  "
        f"dummy vertices={metrics.dummy_vertex_count}  "
        f"edge density={metrics.edge_density}"
    )
    for layer in range(layering.height, 0, -1):
        vertices = sorted(layering.vertices_on(layer))
        print(f"  L{layer:>2}: {vertices}")


def main() -> None:
    # 1. A sparse, shallow random DAG similar to the paper's AT&T graphs.
    graph = att_like_dag(30, seed=7)
    print(f"input graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    # 2. The baseline: Longest-Path Layering (minimum height, often wide).
    lpl = longest_path_layering(graph)
    describe("Longest-Path Layering", graph, lpl)

    # 3. The paper's algorithm: an ant colony that also accounts for the
    #    width contributed by dummy vertices.
    params = ACOParams(alpha=1.0, beta=3.0, n_ants=10, n_tours=10, seed=42)
    result = aco_layering_detailed(graph, params)
    describe("Ant Colony layering", graph, result.layering)

    # 4. Convergence: objective of the best ant per tour.
    print("\ntour-by-tour best objective (1 / (height + width)):")
    for record in result.colony.history:
        print(f"  tour {record.tour:>2}: {record.best_objective:.4f}")


if __name__ == "__main__":
    main()
