#!/usr/bin/env python
"""Regenerate every evaluation figure of the paper as plain-text tables.

Run with::

    python examples/reproduce_figures.py [graphs_per_group]

For each of Figures 4–9 the script runs the relevant algorithms over the
synthetic AT&T-like corpus (``graphs_per_group`` graphs per vertex-count
group; the paper's full corpus has ~67) and prints the group-mean series that
the corresponding figure plots.  This is the script the benchmark harness
mirrors; see EXPERIMENTS.md for a paper-vs-measured discussion of every
figure.
"""

from __future__ import annotations

import sys
import time

from repro.aco.params import ACOParams
from repro.datasets import att_like_corpus
from repro.experiments.figures import FIGURES
from repro.experiments.reporting import format_figure


def main() -> None:
    graphs_per_group = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    corpus = att_like_corpus(graphs_per_group=graphs_per_group)
    params = ACOParams(alpha=1.0, beta=3.0, n_ants=10, n_tours=10, seed=0)
    print(
        f"corpus: {len(corpus)} graphs ({graphs_per_group} per group x 19 groups); "
        f"ACO params: alpha={params.alpha:g} beta={params.beta:g} "
        f"{params.n_ants} ants x {params.n_tours} tours"
    )

    for figure_id, build in FIGURES.items():
        start = time.perf_counter()
        figure = build(corpus=corpus, aco_params=params)
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 70}")
        print(format_figure(figure))
        print(f"({figure_id} regenerated in {elapsed:.1f}s)")


if __name__ == "__main__":
    main()
