#!/usr/bin/env python
"""Compare all five layering algorithms of the paper on a corpus sample.

Run with::

    python examples/compare_layering_methods.py [graphs_per_group]

This is a miniature version of the paper's evaluation (Section VII): the five
algorithms — LPL, LPL+PL, MinWidth, MinWidth+PL and the Ant Colony — are run
over a subset of the synthetic AT&T-like corpus and the per-group means of
every quality criterion are printed as text tables.
"""

from __future__ import annotations

import sys

from repro.aco.params import ACOParams
from repro.datasets import att_like_corpus
from repro.experiments.reporting import format_comparison
from repro.experiments.runner import default_algorithms, run_comparison

METRICS = (
    "width_including_dummies",
    "width_excluding_dummies",
    "height",
    "dummy_vertex_count",
    "edge_density",
    "running_time",
)


def main() -> None:
    graphs_per_group = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    corpus = att_like_corpus(
        graphs_per_group=graphs_per_group, vertex_counts=(10, 25, 40, 55, 70, 85, 100)
    )
    print(
        f"corpus: {len(corpus)} graphs "
        f"({graphs_per_group} per group, 7 vertex-count groups)"
    )

    algorithms = default_algorithms(aco_params=ACOParams(seed=0))
    comparison = run_comparison(corpus, algorithms)

    for metric in METRICS:
        print()
        print(format_comparison(comparison, metric, precision=2))


if __name__ == "__main__":
    main()
